"""HTTP front-end of the analysis service (stdlib only).

The daemon serves the exact wire formats the lower layers already
speak - :meth:`AnalysisRequest.to_dict` payloads and
:class:`~repro.service.shards.ShardSpec` shards - over a
:class:`http.server.ThreadingHTTPServer`, routed through one shared
:class:`~repro.service.session.AnalysisSession` / inline
:class:`~repro.service.jobs.JobQueue`.  Nothing here re-implements
execution: a request served over HTTP runs the same registered engine,
through the same content-addressed caches, as the in-process
``default_session()`` path, so the summaries (and the request keys they
memoize under) are bit-identical.

Endpoints
---------
``GET /health``
    Liveness + version negotiation: wire versions
    (``REQUEST_FORMAT_VERSION``, ``SHARD_PROTOCOL_VERSION``), the
    facade ``API_VERSION`` and the registered kinds.  Unauthenticated.
``GET /stats``
    Session store counters plus per-tenant quota counters.
``POST /run``
    Execute one :class:`AnalysisRequest` synchronously; returns the
    ``AnalysisResult.to_dict()`` summary.
``POST /shard``
    Execute one :class:`ShardSpec`; returns ``ShardResult.to_dict()``.
    This is the cross-host fan-out surface: a coordinator plans shards
    with :func:`~repro.service.shards.mc_transient_shards`, scatters
    them over N daemons (:func:`~repro.service.client.scatter_shards`)
    and merges bit-identically via
    :func:`~repro.service.shards.merge_shard_results`.
``POST /jobs``
    Asynchronous submit; returns ``202`` with the job key (the
    request's content key - resubmitting an identical request returns
    the same job instead of queueing twice).
``GET /jobs/<key>``
    Poll: ``queued`` / ``running`` / ``done`` (with the result) /
    ``failed`` (with the structured error record).
``POST /admin/drain``
    Graceful drain for rolling restarts: the daemon stops accepting
    new ``/run``/``/shard``/``/jobs`` work - each refused with a
    tagged 503 (:class:`~repro.errors.DrainingError` payload carrying
    ``retry_after``) - while in-flight and queued jobs run to
    completion and stay pollable through ``GET /jobs/<key>``.
    ``GET /health`` reports ``draining: true`` so load balancers and
    :class:`~repro.service.resilience.WorkerPool` probes route around
    the daemon instead of tripping its circuit breaker.

Tenancy
-------
When the server is constructed with :class:`TenantConfig` entries,
every endpoint except ``/health`` requires a token
(``Authorization: Bearer <token>`` or ``X-Repro-Token``).  Each tenant
gets a bounded result quota layered *on top of* the session LRUs: the
session stays shared (two tenants running the same workload share one
cached result), but once a tenant holds more than ``max_results``
distinct result keys its oldest keys are evicted from the session memo
- unless another tenant still holds them - so one chatty tenant cannot
wash out everyone else's warm cache.  ``max_pending_jobs`` bounds the
asynchronous queue per tenant the same way.

Errors
------
Every error leaves as one tagged payload built from
:class:`~repro.errors.FailureRecord` (the same schema degraded shard
results carry), with the HTTP status mapped from the exception
hierarchy - see :func:`status_for` - and the registered kinds listed on
unknown-kind errors.  Supervision is server-side: construct the server
with ``retry=RetryPolicy(...)`` and transient solver faults retry (or
degrade, for shards) exactly as they do on an in-process supervised
queue, surfacing as ``failures`` on a ``200`` rather than as a 5xx.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import (AnalysisError, AuthenticationError, DrainingError,
                      FailureRecord, JobTimeoutError, MeasurementError,
                      NetlistError, QuotaExceededError, ReproError,
                      SolverError, TransportError, WorkerCrashError)
from .engines import registered_kinds
from .jobs import JobQueue, RetryPolicy
from .jobs import compiled_for_shard, execute_shard, run_supervised_shard
from .requests import REQUEST_FORMAT_VERSION, AnalysisRequest
from .serialize import to_jsonable
from .session import AnalysisSession
from .shards import SHARD_PROTOCOL_VERSION, ShardSpec


def wire_versions() -> dict:
    """The version vector negotiated through ``GET /health``."""
    return {"request_format": REQUEST_FORMAT_VERSION,
            "shard_protocol": SHARD_PROTOCOL_VERSION}


def _api_version() -> str | None:
    # lazy: repro.api imports this module (serve / AnalysisServer)
    try:
        from ..api import API_VERSION
    except ImportError:  # stripped installs without the facade
        return None
    return API_VERSION


# ---------------------------------------------------------------------------
# uniform error schema
# ---------------------------------------------------------------------------
def status_for(exc: BaseException) -> int:
    """HTTP status of *exc*, mapped from the exception hierarchy.

    Client mistakes (malformed payloads, unknown kinds, bad netlists)
    are 4xx; numerical failures are ``422 Unprocessable`` - the request
    was well-formed, the mathematics refused; infrastructure failures
    map to their conventional 5xx; anything unrecognised is a 500.
    """
    if isinstance(exc, AuthenticationError):
        return 401
    if isinstance(exc, QuotaExceededError):
        return 429
    if isinstance(exc, DrainingError):
        return 503
    if isinstance(exc, JobTimeoutError):
        return 504
    if isinstance(exc, (WorkerCrashError, TransportError)):
        return 502
    if isinstance(exc, (SolverError, MeasurementError)):
        return 422
    if isinstance(exc, (AnalysisError, NetlistError, ReproError)):
        return 400
    if isinstance(exc, (ValueError, TypeError, KeyError,
                        json.JSONDecodeError)):
        return 400
    return 500


def error_payload(exc: BaseException, status: int,
                  site: str = "net") -> dict:
    """One tagged wire error: a serialized
    :class:`~repro.errors.FailureRecord` (solver context and all), the
    mapped *status*, the version vector, and - for unknown-kind errors
    - the kinds this daemon does speak."""
    record = FailureRecord.from_exception(exc, site=site, attempts=1)
    payload = {"error": to_jsonable(record), "status": status,
               "versions": wire_versions()}
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        # the 503 drain tag: clients (and WorkerPool) read this to
        # retry elsewhere instead of treating the daemon as dead
        payload["retry_after"] = float(retry_after)
    message = record.message
    if "unknown request kind" in message or "unknown shard kind" in message:
        payload["kinds"] = list(registered_kinds())
    return payload


class _HttpError(ReproError):
    """Internal: an error with an explicit HTTP status (404s mostly)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


# ---------------------------------------------------------------------------
# tenancy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TenantConfig:
    """One tenant of the daemon: its token and its quotas."""

    name: str
    token: str
    #: Distinct result keys this tenant may hold in the session memo
    #: before its oldest are evicted (refcounted across tenants).
    max_results: int = 32
    #: Unfinished asynchronous jobs this tenant may have queued.
    max_pending_jobs: int = 8

    def __post_init__(self):
        if self.max_results < 1:
            raise ValueError("TenantConfig.max_results must be >= 1")
        if self.max_pending_jobs < 1:
            raise ValueError("TenantConfig.max_pending_jobs must be >= 1")


#: The implicit tenant of an open (token-less) daemon.
ANONYMOUS = TenantConfig(name="anonymous", token="",
                         max_results=10 ** 9, max_pending_jobs=10 ** 9)


class _TenantState:
    """Mutable per-tenant accounting (quota keys + counters)."""

    def __init__(self, config: TenantConfig):
        self.config = config
        #: Result keys this tenant holds, oldest first.
        self.keys: OrderedDict = OrderedDict()
        self.requests = 0
        self.evictions = 0

    def stats(self) -> dict:
        return {"results": len(self.keys),
                "max_results": self.config.max_results,
                "requests": self.requests,
                "evictions": self.evictions}


class _JobRecord:
    """One asynchronous job: its future plus the tenants awaiting it."""

    def __init__(self, key: str, tenants: set):
        self.key = key
        self.tenants = tenants
        self.future: Future | None = None
        self.started = threading.Event()

    def status(self) -> str:
        if self.future is None or not self.future.done():
            return "running" if self.started.is_set() else "queued"
        return "failed" if self.future.exception() is not None else "done"


# ---------------------------------------------------------------------------
# the application (transport-free: the handler only parses/serializes)
# ---------------------------------------------------------------------------
class ServiceApp:
    """Endpoint logic over one shared session - everything the HTTP
    handler does after parsing and before serializing.  Keeping it off
    the handler class makes the surface testable without sockets and
    reusable by a future transport."""

    def __init__(self, session: AnalysisSession | None = None,
                 tenants: list[TenantConfig] | None = None,
                 retry: RetryPolicy | None = None,
                 job_workers: int = 2,
                 max_body_bytes: int = 16 * 2 ** 20,
                 drain_retry_after: float = 5.0):
        self.session = session if session is not None else AnalysisSession()
        self.retry = retry
        self.max_body_bytes = max_body_bytes
        self.drain_retry_after = drain_retry_after
        self._draining = threading.Event()
        # inline queue: executes in the calling (handler) thread,
        # through the shared session's memo, under `retry` supervision
        self.queue = JobQueue(session=self.session, retry=retry)
        self._open = tenants is None
        roster = [ANONYMOUS] if tenants is None else list(tenants)
        self._by_token = {t.token: _TenantState(t) for t in roster}
        if len(self._by_token) != len(roster):
            raise ValueError("tenant tokens must be unique")
        self._quota_lock = threading.Lock()
        #: result key -> set of tenant names holding it (refcount).
        self._owners: dict[str, set] = {}
        self._jobs_lock = threading.Lock()
        self._jobs: dict[str, _JobRecord] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-job")

    # -- auth ----------------------------------------------------------
    def authenticate(self, token: str | None) -> _TenantState:
        if self._open:
            return self._by_token[""]
        if not token:
            raise AuthenticationError(
                "missing tenant token (Authorization: Bearer <token> "
                "or X-Repro-Token)")
        try:
            return self._by_token[token]
        except KeyError:
            raise AuthenticationError("unknown tenant token") from None

    # -- per-tenant result quota ---------------------------------------
    def _record_result(self, tenant: _TenantState, key: str) -> None:
        """Charge *key* to *tenant*; evict its oldest keys over quota,
        dropping each from the session memo only once no tenant holds
        it (the session LRU itself stays shared)."""
        evict = []
        with self._quota_lock:
            tenant.requests += 1
            tenant.keys[key] = True
            tenant.keys.move_to_end(key)
            self._owners.setdefault(key, set()).add(tenant.config.name)
            while len(tenant.keys) > tenant.config.max_results:
                old, _ = tenant.keys.popitem(last=False)
                holders = self._owners.get(old, set())
                holders.discard(tenant.config.name)
                tenant.evictions += 1
                if not holders:
                    self._owners.pop(old, None)
                    evict.append(old)
        for old in evict:
            self.session.evict_result(old)

    # -- graceful drain ------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self) -> dict:
        """Stop accepting new ``/run``/``/shard``/``/jobs`` work (each
        now refused with a tagged 503) while everything already
        accepted - including queued asynchronous jobs - runs to
        completion and stays pollable.  Idempotent; this is the rolling
        -restart protocol: drain, wait for ``pending`` to reach 0, stop
        the process."""
        self._draining.set()
        with self._jobs_lock:
            pending = sum(1 for j in self._jobs.values()
                          if j.status() in ("queued", "running"))
        return {"status": "draining", "pending_jobs": pending,
                "retry_after": self.drain_retry_after}

    def _refuse_if_draining(self, what: str) -> None:
        if self._draining.is_set():
            raise DrainingError(
                f"daemon is draining and accepts no new {what}; "
                f"in-flight work is finishing - retry another endpoint "
                f"or wait retry_after={self.drain_retry_after} s",
                retry_after=self.drain_retry_after)

    # -- endpoints -----------------------------------------------------
    def health(self) -> dict:
        return {"status": "draining" if self.draining else "ok",
                "api_version": _api_version(),
                "versions": wire_versions(),
                "kinds": list(registered_kinds()),
                "authenticated": not self._open,
                "draining": self.draining}

    def stats(self) -> dict:
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        return {"session": self.session.stats(),
                "draining": self.draining,
                "tenants": {st.config.name: st.stats()
                            for st in self._by_token.values()},
                "jobs": {"total": len(jobs),
                         "pending": sum(1 for j in jobs
                                        if j.status() in ("queued",
                                                          "running"))}}

    def run(self, tenant: _TenantState, payload: dict) -> dict:
        self._refuse_if_draining("synchronous runs")
        request = AnalysisRequest.from_dict(payload)
        result = self.queue.submit(request).result()
        self._record_result(tenant, request.key())
        return result.to_dict()

    def run_shard(self, tenant: _TenantState, payload: dict) -> dict:
        self._refuse_if_draining("shards")
        spec = ShardSpec.from_dict(payload)
        with self._quota_lock:
            tenant.requests += 1
        compiled = compiled_for_shard(spec, self.session)
        if self.retry is not None:
            result = run_supervised_shard(spec, self.retry,
                                          compiled=compiled)
        else:
            result = execute_shard(spec, 0, compiled)
        return result.to_dict()

    def submit_job(self, tenant: _TenantState, payload: dict) -> dict:
        self._refuse_if_draining("jobs")
        request = AnalysisRequest.from_dict(payload)
        key = request.key()
        with self._jobs_lock:
            record = self._jobs.get(key)
            if record is not None:
                # idempotent resubmit: same content, same job
                record.tenants.add(tenant.config.name)
                return self._job_payload(record)
            pending = sum(
                1 for r in self._jobs.values()
                if tenant.config.name in r.tenants
                and r.status() in ("queued", "running"))
            if pending >= tenant.config.max_pending_jobs:
                raise QuotaExceededError(
                    f"tenant '{tenant.config.name}' already has "
                    f"{pending} pending jobs "
                    f"(max_pending_jobs={tenant.config.max_pending_jobs})")
            record = _JobRecord(key, {tenant.config.name})
            self._jobs[key] = record

        def _execute():
            record.started.set()
            result = self.queue.submit(request).result()
            self._record_result(tenant, key)
            return result

        record.future = self._executor.submit(_execute)
        return self._job_payload(record)

    def job_status(self, tenant: _TenantState, key: str) -> dict:
        with self._jobs_lock:
            record = self._jobs.get(key)
        if record is None:
            raise _HttpError(404, f"no job with key '{key}'")
        return self._job_payload(record)

    def _job_payload(self, record: _JobRecord) -> dict:
        status = record.status()
        payload = {"key": record.key, "status": status}
        if status == "done":
            payload["result"] = record.future.result().to_dict()
        elif status == "failed":
            exc = record.future.exception()
            payload["error_status"] = status_for(exc)
            payload["error"] = to_jsonable(
                FailureRecord.from_exception(exc, site="job", attempts=1))
        return payload

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)
        self.queue.shutdown()


# ---------------------------------------------------------------------------
# HTTP plumbing
# ---------------------------------------------------------------------------
class _HttpServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    app: ServiceApp  # attached by AnalysisServer


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-analysis"

    # -- plumbing ------------------------------------------------------
    @property
    def app(self) -> ServiceApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, *args) -> None:  # tests spin many daemons
        pass

    def _token(self) -> str | None:
        auth = self.headers.get("Authorization", "")
        if auth.startswith("Bearer "):
            return auth[len("Bearer "):].strip()
        return self.headers.get("X-Repro-Token")

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.app.max_body_bytes:
            raise _HttpError(413, f"request body of {length} bytes "
                                  f"exceeds the "
                                  f"{self.app.max_body_bytes} byte limit")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise AnalysisError("expected a JSON request body")
        return json.loads(raw.decode("utf-8"))

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")

    def _route(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        try:
            if method == "GET" and path == "/health":
                self._send(200, self.app.health())
                return
            tenant = self.app.authenticate(self._token())
            if method == "GET" and path == "/stats":
                self._send(200, self.app.stats())
            elif method == "POST" and path == "/admin/drain":
                # body optional (and ignored) - but drain it from the
                # socket so HTTP/1.1 keep-alive stays framed
                length = int(self.headers.get("Content-Length") or 0)
                if length:
                    self.rfile.read(min(length, self.app.max_body_bytes))
                self._send(200, self.app.drain())
            elif method == "POST" and path == "/run":
                self._send(200, self.app.run(tenant, self._body()))
            elif method == "POST" and path == "/shard":
                self._send(200, self.app.run_shard(tenant, self._body()))
            elif method == "POST" and path == "/jobs":
                self._send(202, self.app.submit_job(tenant, self._body()))
            elif method == "GET" and path.startswith("/jobs/"):
                key = path[len("/jobs/"):]
                self._send(200, self.app.job_status(tenant, key))
            else:
                raise _HttpError(404,
                                 f"no endpoint for {method} {path}")
        except Exception as exc:
            status = (exc.status if isinstance(exc, _HttpError)
                      else status_for(exc))
            self._send(status, error_payload(exc, status))


class AnalysisServer:
    """The long-running daemon: a threaded HTTP server over one
    :class:`ServiceApp`.

    ``port=0`` binds an ephemeral port (read it back from :attr:`url`)
    - the shape every loopback test and example uses.  Use as a context
    manager, or pair :meth:`start` with :meth:`close`.
    """

    def __init__(self, session: AnalysisSession | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 tenants: list[TenantConfig] | None = None,
                 retry: RetryPolicy | None = None, job_workers: int = 2,
                 max_body_bytes: int = 16 * 2 ** 20,
                 drain_retry_after: float = 5.0):
        self.app = ServiceApp(session=session, tenants=tenants,
                              retry=retry, job_workers=job_workers,
                              max_body_bytes=max_body_bytes,
                              drain_retry_after=drain_retry_after)
        self._httpd = _HttpServer((host, port), _Handler)
        self._httpd.app = self.app
        self._thread: threading.Thread | None = None

    @property
    def session(self) -> AnalysisSession:
        return self.app.session

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "AnalysisServer":
        """Serve on a daemon thread; returns self (chainable)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-analysis-server", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the daemon entry point)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.app.close()

    def __enter__(self) -> "AnalysisServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


def serve(host: str = "127.0.0.1", port: int = 8760,
          session: AnalysisSession | None = None,
          tenants: list[TenantConfig] | None = None,
          retry: RetryPolicy | None = None, job_workers: int = 2,
          block: bool = True) -> AnalysisServer:
    """Start an analysis daemon.

    ``block=True`` (the daemon entry point) serves on the calling
    thread until interrupted; ``block=False`` serves on a background
    thread and returns the started :class:`AnalysisServer` (close it).
    """
    server = AnalysisServer(session=session, host=host, port=port,
                            tenants=tenants, retry=retry,
                            job_workers=job_workers)
    if not block:
        return server.start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return server


def _main(argv: list | None = None) -> int:
    """``python -m repro.service.net``: one worker daemon as a real OS
    process.  Announces its URL on stdout (one line, flushed) before
    serving, so a supervisor - or the chaos suite, which SIGKILLs these
    to prove failover - can spawn on an ephemeral port and read the
    address back."""
    import argparse
    parser = argparse.ArgumentParser(
        description="repro analysis worker daemon")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 binds an ephemeral port (announced on "
                             "stdout)")
    parser.add_argument("--retry-attempts", type=int, default=0,
                        help="arm server-side shard supervision with "
                             "this retry budget (0: unsupervised)")
    args = parser.parse_args(argv)
    retry = (RetryPolicy(max_attempts=args.retry_attempts)
             if args.retry_attempts > 0 else None)
    server = AnalysisServer(host=args.host, port=args.port, retry=retry)
    print(server.url, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
