"""Process fan-out of analysis requests and Monte-Carlo shards.

:class:`JobQueue` executes :class:`~repro.service.requests.
AnalysisRequest` jobs - inline through a shared
:class:`~repro.service.session.AnalysisSession` when no pool is
requested, or across a :class:`~concurrent.futures.ProcessPoolExecutor`
when one is.

Worker processes return the *serialized* result
(:meth:`AnalysisResult.to_dict`): the rich ``detail`` object holds live
factorizations and is deliberately not shipped back.  Inline execution
keeps the full detail, and repeated jobs hit the shared session's
result memo either way.  Each worker process keeps its own private
session, so a queue that executes many jobs on few circuits pays each
compile/PSS once per worker, not once per job.

Supervision
-----------
Pass ``retry=RetryPolicy(...)`` to put every submission under
supervision:

* each attempt gets a wall-clock **deadline** (pooled queues only -
  inline execution cannot be preempted); an overrun attempt is
  abandoned and re-dispatched, and its stale result, should the hung
  worker ever produce one, is discarded by a generation check, so a
  shard is never merged twice;
* failed attempts **retry with exponential backoff**, but only for
  errors a retry can plausibly fix (:data:`~repro.errors.
  RETRYABLE_ERRORS`) - malformed requests fail immediately;
* a **worker crash** (``BrokenProcessPool``) respawns the executor
  exactly once per breakage (pool-epoch guarded, however many jobs
  were in flight) and re-dispatches each surviving job; re-execution
  is safe because shards are generative
  (:class:`~repro.service.shards.ShardSpec` redraws from the seed), so
  the bit-identical merge guarantee survives recovery;
* a shard that exhausts its attempts **degrades deterministically**
  (``RetryPolicy.degrade``, default on): its span merges NaN-frozen
  with ``n_failed`` accounting and a structured
  :class:`~repro.errors.FailureRecord`, instead of killing the run.

Deadlines are measured from dispatch, so time spent queued behind busy
workers counts; size them with headroom over the per-shard runtime.
Fault injection for all of these paths lives in
:mod:`repro.service.faults`; the hooks sit in :func:`_run_request` /
:func:`_run_shard` (the worker entry points) and fire on both sides of
the process boundary.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..errors import RETRYABLE_ERRORS, JobTimeoutError, WorkerCrashError
from .faults import maybe_inject
from .requests import AnalysisRequest, AnalysisResult
from .shards import (ShardResult, ShardSpec, degraded_shard_result,
                     run_shard)


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision parameters of one :class:`JobQueue` (or one
    supervised Monte-Carlo run).

    ``delay(k)`` after the *k*-th failed attempt is
    ``base_delay * backoff**(k-1)`` seconds - classic exponential
    backoff, 0.05/0.1/0.2/... at the defaults.
    """

    #: Total attempts per job (first run + retries).
    max_attempts: int = 3
    #: Backoff before the first retry [s]; 0 disables sleeping.
    base_delay: float = 0.05
    #: Backoff growth factor per further retry.
    backoff: float = 2.0
    #: Per-attempt wall-clock limit [s] (``None``: unbounded).  Only
    #: enforceable on pooled queues; measured from dispatch, so it
    #: includes time queued behind busy workers.
    deadline: float | None = None
    #: Degrade shard jobs that exhaust their attempts into NaN-frozen
    #: spans (:func:`~repro.service.shards.degraded_shard_result`)
    #: instead of raising.  Request jobs always raise.
    degrade: bool = True

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("RetryPolicy.max_attempts must be >= 1")

    def delay(self, failed_attempts: int) -> float:
        """Backoff [s] after *failed_attempts* failures (>= 1)."""
        if self.base_delay <= 0.0:
            return 0.0
        return self.base_delay * self.backoff ** (failed_attempts - 1)

    def to_dict(self) -> dict:
        return {"max_attempts": self.max_attempts,
                "base_delay": self.base_delay, "backoff": self.backoff,
                "deadline": self.deadline, "degrade": self.degrade}

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(**data)


class Job:
    """Handle on one submitted request."""

    def __init__(self, request, future: Future, supervisor=None):
        self.request = request
        self.future = future
        self._supervisor = supervisor

    def done(self) -> bool:
        return self.future.done()

    def result(self, timeout: float | None = None):
        """The :class:`AnalysisResult` (or :class:`ShardResult` for
        shard jobs), blocking until available."""
        return self.future.result(timeout)

    @property
    def failed_attempts(self) -> int:
        """Attempts the supervisor has seen fail so far (0 when the
        job is unsupervised or succeeded first try)."""
        return (self._supervisor.attempts
                if self._supervisor is not None else 0)


# -- worker-process entry points (module-level: picklable) -------------
_WORKER_SESSION = None


def _worker_session():
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        from .session import AnalysisSession
        _WORKER_SESSION = AnalysisSession()
    return _WORKER_SESSION


def _run_request(request_dict: dict, attempt: int = 0) -> dict:
    from .engines import engine_for
    request = AnalysisRequest.from_dict(request_dict)
    key = request.key()
    maybe_inject("run_request", key=key, attempt=attempt)
    if engine_for(request.kind).fan_out:
        # no nested pools: the job already owns a whole process
        options = {k: v for k, v in request.options.items()
                   if k != "n_workers"}
        request = AnalysisRequest(kind=request.kind,
                                  circuit=request.circuit,
                                  measures=request.measures,
                                  outputs=request.outputs,
                                  options=options)
    result = _worker_session().run(request).to_dict()
    result["request_key"] = key  # as submitted, pre-strip
    return result


def compiled_for_shard(spec: ShardSpec, session):
    """Compile a shard's circuit, through the session compile cache
    when that is semantically transparent (no session-level backend
    override that the spec does not know about)."""
    from .serialize import circuit_from_dict
    circuit = circuit_from_dict(spec.circuit)
    backend = spec.options.get("backend")
    if session is not None and session.backend is None:
        return session.compile(circuit, backend=backend)
    from ..analysis.mna import compile_circuit
    return compile_circuit(circuit, backend=backend)


def execute_shard(spec: ShardSpec, attempt: int = 0,
                   compiled=None) -> ShardResult:
    """One shard attempt: the fault-injection site, then the shard."""
    maybe_inject("run_shard", key=spec.start, attempt=attempt)
    return run_shard(spec, compiled)


def _run_shard(spec_dict: dict, attempt: int = 0) -> dict:
    spec = ShardSpec.from_dict(spec_dict)
    compiled = compiled_for_shard(spec, _worker_session())
    return execute_shard(spec, attempt, compiled).to_dict()


# ---------------------------------------------------------------------------
# inline supervision (shared with the Monte-Carlo engines)
# ---------------------------------------------------------------------------
def run_with_retry(policy: RetryPolicy, attempt_fn, degrade_fn):
    """Synchronous retry loop: *attempt_fn(attempt)* until success,
    retryable-error budget exhaustion, or a non-retryable error.

    *degrade_fn(last_error, attempts)*, when given, converts
    exhaustion into a degraded result instead of a raise.
    """
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        if attempt:
            delay = policy.delay(attempt)
            if delay > 0.0:
                time.sleep(delay)
        try:
            return attempt_fn(attempt)
        except RETRYABLE_ERRORS as exc:
            last = exc
    if degrade_fn is not None:
        return degrade_fn(last, policy.max_attempts)
    raise last


def run_supervised_shard(spec: ShardSpec, policy: RetryPolicy,
                         compiled=None) -> ShardResult:
    """Execute one shard under *policy*, in the calling process.

    This is the inline form of :meth:`JobQueue.submit_shard`
    supervision: retry with backoff on retryable errors, degrade to a
    NaN-frozen span on exhaustion (``policy.degrade``).  Deadlines are
    not enforced - a synchronous attempt cannot be preempted.
    """
    degrade_fn = None
    if policy.degrade:
        def degrade_fn(exc, attempts):
            return degraded_shard_result(spec, exc, attempts)
    return run_with_retry(
        policy, lambda attempt: execute_shard(spec, attempt, compiled),
        degrade_fn)


# ---------------------------------------------------------------------------
# pooled supervision
# ---------------------------------------------------------------------------
class _Supervised:
    """Supervisor of one pooled job: deadlines, retries, degradation.

    All state transitions are guarded by a generation token: every
    re-dispatch invalidates the previous attempt, so a stale completion
    (a timed-out worker finishing late, a pool-breakage race) can never
    resolve the job a second time or double-merge a shard.  The token
    is what makes crash re-dispatch *exactly once* per attempt - the
    idempotency key is the job itself, whose shard payload is
    content-addressed (:meth:`ShardSpec.workload_key`).
    """

    def __init__(self, queue: "JobQueue", fn, payload: dict, decode,
                 policy: RetryPolicy, degrade_fn=None):
        self.queue = queue
        self.fn = fn
        self.payload = payload
        self.decode = decode
        self.policy = policy
        self.degrade_fn = degrade_fn
        self.future: Future = Future()
        #: Failed attempts so far (== the attempt index dispatched next).
        self.attempts = 0
        self._lock = threading.Lock()
        self._generation = 0
        self._inner: Future | None = None
        self._epoch = 0
        self._timer: threading.Timer | None = None
        #: Generation whose inner-future cancellation is the deadline
        #: timer's doing (so ``_on_done`` defers to it); shutdown
        #: cancels never set this and stay terminal.
        self._deadline_cancel_gen: int | None = None
        self._done = False
        self._dispatch()

    # -- attempt lifecycle --------------------------------------------
    def _dispatch(self) -> None:
        with self._lock:
            if self._done:
                return
            gen = self._generation
            attempt = self.attempts
        try:
            inner, epoch = self.queue._submit_raw(self.fn, self.payload,
                                                  attempt)
        except BrokenProcessPool as exc:
            # the submit raced another job's pool breakage before any
            # supervisor respawned: route it through the crash
            # machinery (WorkerCrashError conversion, epoch-guarded
            # respawn, retry budget) like an in-flight breakage
            with self._lock:
                self._epoch = self.queue.pool_epoch
            self._handle_failure(exc, gen)
            return
        except Exception as exc:  # queue shut down mid-retry
            self._finish_exception(exc)
            return
        with self._lock:
            if self._done or gen != self._generation:
                inner.cancel()
                return
            self._inner = inner
            self._epoch = epoch
            if self.policy.deadline is not None:
                self._timer = threading.Timer(self.policy.deadline,
                                              self._on_deadline, [gen])
                self._timer.daemon = True
                self._timer.start()
        inner.add_done_callback(lambda fut: self._on_done(fut, gen))

    def _on_done(self, fut: Future, gen: int) -> None:
        with self._lock:
            if self._done or gen != self._generation:
                return  # stale attempt: result discarded
            if fut.cancelled() and self._deadline_cancel_gen == gen:
                # the deadline timer cancelled this still-queued
                # attempt and owns the failure: its JobTimeoutError
                # retries/degrades, where a CancelledError would kill
                # the job outright
                return
            self._cancel_timer()
            exc = (CancelledError() if fut.cancelled()
                   else fut.exception())
            if exc is None:
                self._done = True
                raw = fut.result()
        if exc is None:
            try:
                self.future.set_result(self.decode(raw))
            except Exception as dexc:
                self.future.set_exception(dexc)
        else:
            self._handle_failure(exc, gen)

    def _on_deadline(self, gen: int) -> None:
        with self._lock:
            if self._done or gen != self._generation:
                return
            inner = self._inner
            self._deadline_cancel_gen = gen  # claim the cancel below
        if inner is not None:
            inner.cancel()  # a queued attempt dies here (its _on_done
            #                 defers to this timeout); a running one is
            #                 abandoned to its fate and gated stale
        self._handle_failure(JobTimeoutError(
            f"attempt {self.attempts} exceeded the "
            f"{self.policy.deadline} s deadline"), gen)

    def _handle_failure(self, exc: BaseException, gen: int) -> None:
        respawn_epoch = None
        with self._lock:
            if self._done or gen != self._generation:
                return  # deadline/completion race: first cause wins
            self._cancel_timer()
            self._generation += 1
            self.attempts += 1
            if isinstance(exc, BrokenProcessPool):
                exc = WorkerCrashError(
                    f"worker process died mid-job: {exc}")
                respawn_epoch = self._epoch
            retryable = isinstance(exc, RETRYABLE_ERRORS)
            will_retry = (retryable
                          and self.attempts < self.policy.max_attempts)
            attempts = self.attempts
        if respawn_epoch is not None:
            try:
                self.queue._respawn_pool(respawn_epoch)
            except Exception:
                will_retry = False  # queue shut down underneath us
        if will_retry:
            delay = self.policy.delay(attempts)
            if delay > 0.0:
                timer = threading.Timer(delay, self._dispatch)
                timer.daemon = True
                timer.start()
            else:
                self._dispatch()
            return
        if retryable and self.degrade_fn is not None:
            with self._lock:
                self._done = True
            try:
                self.future.set_result(self.degrade_fn(exc, attempts))
            except Exception as dexc:
                self.future.set_exception(dexc)
        else:
            self._finish_exception(exc)

    # -- helpers -------------------------------------------------------
    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _finish_exception(self, exc: BaseException) -> None:
        with self._lock:
            if self._done:
                return
            self._done = True
            self._cancel_timer()
        self.future.set_exception(exc)


class JobQueue:
    """Fan independent analysis jobs across worker processes.

    Parameters
    ----------
    session:
        The session inline jobs run through (default: the process
        default session).
    n_workers:
        ``None``/1 executes every job inline at submission time;
        ``> 1`` spawns a process pool.
    retry:
        A :class:`RetryPolicy` putting every submission under
        supervision (deadlines, retry with backoff, pool-crash
        recovery, shard degradation - see the module docstring).
        ``None`` (default) keeps the unsupervised fail-fast behaviour.

    Use as a context manager, or call :meth:`shutdown`.
    """

    def __init__(self, session=None, n_workers: int | None = None,
                 retry: RetryPolicy | None = None):
        if session is None:
            from .session import default_session
            session = default_session()
        self.session = session
        self.n_workers = n_workers
        self.retry = retry
        self._inline = n_workers is None or n_workers <= 1
        self._pool_lock = threading.Lock()
        self._pool_epoch = 0
        self._pool = (None if self._inline
                      else ProcessPoolExecutor(max_workers=n_workers))

    # -- pool plumbing -------------------------------------------------
    def _submit_raw(self, fn, payload: dict,
                    attempt: int) -> tuple[Future, int]:
        with self._pool_lock:
            pool = self._pool
            epoch = self._pool_epoch
        if pool is None:
            raise RuntimeError("JobQueue is shut down")
        return pool.submit(fn, payload, attempt), epoch

    def _respawn_pool(self, seen_epoch: int) -> None:
        """Replace a broken executor, exactly once per breakage.

        Every job in flight when a worker dies fails with
        ``BrokenProcessPool`` and calls in here; the epoch check makes
        the first caller respawn and the rest no-ops, so one crash
        costs one respawn however many shards it took down.
        """
        with self._pool_lock:
            if self._pool is None:
                raise RuntimeError("JobQueue is shut down")
            if self._pool_epoch != seen_epoch:
                return
            old = self._pool
            self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
            self._pool_epoch += 1
        old.shutdown(wait=False, cancel_futures=True)

    @property
    def pool_epoch(self) -> int:
        """Number of pool respawns survived so far."""
        return self._pool_epoch

    # -- submission ----------------------------------------------------
    def submit(self, request: AnalysisRequest) -> Job:
        """Queue one request; returns immediately with a :class:`Job`.

        Inline queues execute synchronously here (full ``detail``
        available); pooled queues execute in a worker and deliver the
        summary-only result.
        """
        if self._inline:
            def attempt_fn(attempt: int):
                maybe_inject("run_request", key=request.key(),
                             attempt=attempt)
                return self.session.run(request)
            return Job(request, _inline_future(
                self.retry, attempt_fn, None))
        if self.retry is None:
            inner, _ = self._submit_raw(_run_request, request.to_dict(),
                                        0)
            return Job(request, _chain(inner, AnalysisResult.from_dict))
        sup = _Supervised(self, _run_request, request.to_dict(),
                          AnalysisResult.from_dict, self.retry)
        return Job(request, sup.future, supervisor=sup)

    def submit_shard(self, spec: ShardSpec) -> Job:
        """Queue one Monte-Carlo shard (see
        :mod:`repro.service.shards`)."""
        if self._inline:
            if self.retry is not None:
                future: Future = Future()
                try:
                    future.set_result(run_supervised_shard(
                        spec, self.retry,
                        compiled=compiled_for_shard(spec, self.session)))
                except Exception as exc:
                    future.set_exception(exc)
                return Job(spec, future)
            return Job(spec, _inline_future(
                None, lambda attempt: execute_shard(
                    spec, attempt,
                    compiled_for_shard(spec, self.session)), None))
        if self.retry is None:
            inner, _ = self._submit_raw(_run_shard, spec.to_dict(), 0)
            return Job(spec, _chain(inner, ShardResult.from_dict))
        degrade_fn = None
        if self.retry.degrade:
            def degrade_fn(exc, attempts):
                return degraded_shard_result(spec, exc, attempts)
        sup = _Supervised(self, _run_shard, spec.to_dict(),
                          ShardResult.from_dict, self.retry, degrade_fn)
        return Job(spec, sup.future, supervisor=sup)

    def map(self, requests) -> list:
        """Submit all *requests* and block for their results, in
        order."""
        jobs = [self.submit(r) for r in requests]
        return [job.result() for job in jobs]

    # -- lifecycle -----------------------------------------------------
    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = True) -> None:
        """Stop the pool.  Queued-but-unstarted jobs are cancelled
        (*cancel_futures*), so a caller unwinding from a failed
        :meth:`map` does not block on work it no longer wants; pass
        ``wait=False`` to also skip waiting for already-running jobs.
        """
        with self._pool_lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=cancel_futures)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _inline_future(policy: RetryPolicy | None, attempt_fn,
                   degrade_fn) -> Future:
    """Execute now (optionally under a retry policy); deliver through
    a resolved future so inline and pooled jobs share an interface."""
    future: Future = Future()
    try:
        if policy is None:
            future.set_result(attempt_fn(0))
        else:
            future.set_result(
                run_with_retry(policy, attempt_fn, degrade_fn))
    except Exception as exc:  # propagate through the future
        future.set_exception(exc)
    return future


def _chain(inner: Future, decode) -> Future:
    """An outer future resolving to ``decode(inner.result())``."""
    outer: Future = Future()

    def _done(fut: Future) -> None:
        if fut.cancelled():
            outer.cancel()
            return
        exc = fut.exception()
        if exc is not None:
            outer.set_exception(exc)
        else:
            outer.set_result(decode(fut.result()))

    inner.add_done_callback(_done)
    return outer
