"""Process fan-out of analysis requests and Monte-Carlo shards.

:class:`JobQueue` executes :class:`~repro.service.requests.
AnalysisRequest` jobs - inline through a shared
:class:`~repro.service.session.AnalysisSession` when no pool is
requested, or across a :class:`~concurrent.futures.ProcessPoolExecutor`
when one is.

Worker processes return the *serialized* result
(:meth:`AnalysisResult.to_dict`): the rich ``detail`` object holds live
factorizations and is deliberately not shipped back.  Inline execution
keeps the full detail, and repeated jobs hit the shared session's
result memo either way.  Each worker process keeps its own private
session, so a queue that executes many jobs on few circuits pays each
compile/PSS once per worker, not once per job.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor

from .requests import AnalysisRequest, AnalysisResult
from .shards import ShardResult, ShardSpec


class Job:
    """Handle on one submitted request."""

    def __init__(self, request, future: Future):
        self.request = request
        self.future = future

    def done(self) -> bool:
        return self.future.done()

    def result(self, timeout: float | None = None):
        """The :class:`AnalysisResult` (or :class:`ShardResult` for
        shard jobs), blocking until available."""
        return self.future.result(timeout)


# -- worker-process entry points (module-level: picklable) -------------
_WORKER_SESSION = None


def _worker_session():
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        from .session import AnalysisSession
        _WORKER_SESSION = AnalysisSession()
    return _WORKER_SESSION


def _run_request(request_dict: dict) -> dict:
    request = AnalysisRequest.from_dict(request_dict)
    key = request.key()
    if request.kind in ("mc_transient", "mc_dc"):
        # no nested pools: the job already owns a whole process
        options = {k: v for k, v in request.options.items()
                   if k != "n_workers"}
        request = AnalysisRequest(kind=request.kind,
                                  circuit=request.circuit,
                                  measures=request.measures,
                                  outputs=request.outputs,
                                  options=options)
    result = _worker_session().run(request).to_dict()
    result["request_key"] = key  # as submitted, pre-strip
    return result


def _run_shard(spec_dict: dict) -> dict:
    from .shards import run_shard
    return run_shard(ShardSpec.from_dict(spec_dict)).to_dict()


class JobQueue:
    """Fan independent analysis jobs across worker processes.

    Parameters
    ----------
    session:
        The session inline jobs run through (default: the process
        default session).
    n_workers:
        ``None``/1 executes every job inline at submission time;
        ``> 1`` spawns a process pool.

    Use as a context manager, or call :meth:`shutdown`.
    """

    def __init__(self, session=None, n_workers: int | None = None):
        if session is None:
            from .session import default_session
            session = default_session()
        self.session = session
        self.n_workers = n_workers
        self._pool = (ProcessPoolExecutor(max_workers=n_workers)
                      if n_workers is not None and n_workers > 1
                      else None)

    # -- submission ----------------------------------------------------
    def submit(self, request: AnalysisRequest) -> Job:
        """Queue one request; returns immediately with a :class:`Job`.

        Inline queues execute synchronously here (full ``detail``
        available); pooled queues execute in a worker and deliver the
        summary-only result.
        """
        if self._pool is None:
            future: Future = Future()
            try:
                future.set_result(self.session.run(request))
            except Exception as exc:  # propagate through the future
                future.set_exception(exc)
            return Job(request, future)
        inner = self._pool.submit(_run_request, request.to_dict())
        return Job(request, _chain(inner, AnalysisResult.from_dict))

    def submit_shard(self, spec: ShardSpec) -> Job:
        """Queue one Monte-Carlo shard (see
        :mod:`repro.service.shards`)."""
        if self._pool is None:
            from .shards import run_shard
            future = Future()
            try:
                future.set_result(run_shard(spec))
            except Exception as exc:
                future.set_exception(exc)
            return Job(spec, future)
        inner = self._pool.submit(_run_shard, spec.to_dict())
        return Job(spec, _chain(inner, ShardResult.from_dict))

    def map(self, requests) -> list:
        """Submit all *requests* and block for their results, in
        order."""
        jobs = [self.submit(r) for r in requests]
        return [job.result() for job in jobs]

    # -- lifecycle -----------------------------------------------------
    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def _chain(inner: Future, decode) -> Future:
    """An outer future resolving to ``decode(inner.result())``."""
    outer: Future = Future()

    def _done(fut: Future) -> None:
        exc = fut.exception()
        if exc is not None:
            outer.set_exception(exc)
        else:
            outer.set_result(decode(fut.result()))

    inner.add_done_callback(_done)
    return outer
