"""JSON-serializable encodings of circuits, measures and options.

Everything the service layer ships across a process or host boundary -
:class:`~repro.service.requests.AnalysisRequest` payloads and
:class:`~repro.service.shards.ShardSpec` shards - is encoded through the
two functions here:

* :func:`to_jsonable` turns a registered dataclass (elements, time
  functions, measures, analysis options) into a plain
  ``{"__type__": ..., field: value}`` dict of JSON types; numpy arrays
  become tagged lists.
* :func:`from_jsonable` inverts it exactly.

The registry is closed on purpose: only types the engines themselves
ship can cross a serialization boundary, so a decoded request can never
execute arbitrary classes.  In-process paths (the default
:func:`~repro.core.montecarlo.monte_carlo_transient` fan-out) keep
passing live objects and never pay for the round-trip.
"""

from __future__ import annotations

from dataclasses import fields as _dataclass_fields
from dataclasses import is_dataclass as _is_dataclass

import numpy as np

from ..circuit.netlist import Circuit

#: Built lazily (pulling the measure classes in at import time would
#: drag :mod:`repro.core` into every service import).
_REGISTRY: dict[str, type] | None = None


def _registry() -> dict[str, type]:
    global _REGISTRY
    if _REGISTRY is None:
        from ..analysis.dcop import NewtonOptions
        from ..analysis.pss import PssOptions
        from ..analysis.transient import TransientOptions
        from ..circuit.controlled import GateWindow, Vccs, Vcvs
        from ..circuit.mosfet import Mosfet
        from ..circuit.passives import Capacitor, Inductor, Resistor
        from ..circuit.sources import (CurrentSource, Dc, Pwl, Sine,
                                       SmoothPulse, VoltageSource)
        from ..circuit.technology import MosParams, Technology
        from ..core.gaussian_mixture import MixtureComponent
        from ..core.measures import DcLevel, EdgeDelay, Frequency
        from ..errors import FailureRecord
        from ..variation import (CorrelationGroup, ParameterVariation,
                                 VariationSpec)
        _REGISTRY = {cls.__name__: cls for cls in (
            Resistor, Capacitor, Inductor,
            VoltageSource, CurrentSource, Vccs, Vcvs, Mosfet,
            Dc, Sine, SmoothPulse, Pwl, GateWindow,
            MosParams, Technology,
            DcLevel, EdgeDelay, Frequency,
            NewtonOptions, PssOptions, TransientOptions,
            FailureRecord,
            ParameterVariation, CorrelationGroup, VariationSpec,
            MixtureComponent,
        )}
    return _REGISTRY


def to_jsonable(obj):
    """Encode *obj* into JSON-compatible types (see module docstring).

    Raises ``TypeError`` for values outside the closed registry - an
    unregistered custom :class:`~repro.core.measures.Measure`, say -
    which is the signal that a workload can only run in-process.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                raise TypeError(
                    f"JSON object keys must be strings, got {k!r}")
            out[k] = to_jsonable(v)
        return out
    if _is_dataclass(obj) and type(obj).__name__ in _registry():
        rec = {"__type__": type(obj).__name__}
        for f in _dataclass_fields(obj):
            if f.init:
                rec[f.name] = to_jsonable(getattr(obj, f.name))
        return rec
    raise TypeError(
        f"cannot serialize a value of type {type(obj).__name__} "
        "(not in the service type registry)")


def from_jsonable(obj):
    """Decode the output of :func:`to_jsonable` back into live objects."""
    if isinstance(obj, dict):
        if "__ndarray__" in obj:
            return np.asarray(obj["__ndarray__"],
                              dtype=obj.get("dtype", "float64"))
        if "__type__" in obj:
            name = obj["__type__"]
            try:
                cls = _registry()[name]
            except KeyError:
                raise TypeError(
                    f"unknown serialized type '{name}'") from None
            kwargs = {k: from_jsonable(v) for k, v in obj.items()
                      if k != "__type__"}
            return cls(**kwargs)
        return {k: from_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [from_jsonable(v) for v in obj]
    return obj


def circuit_to_dict(circuit: Circuit) -> dict:
    """Serialize a :class:`Circuit` (elements + initial conditions)."""
    return {
        "format": 1,
        "name": circuit.name,
        "elements": [to_jsonable(el) for el in circuit],
        "ic": {node: float(v) for node, v in circuit.ic.items()},
    }


def circuit_from_dict(data: dict) -> Circuit:
    """Rebuild a :class:`Circuit` from :func:`circuit_to_dict` output.

    The round-trip preserves the fingerprint:
    ``circuit_from_dict(circuit_to_dict(c)).fingerprint()
    == c.fingerprint()``.
    """
    if data.get("format") != 1:
        raise ValueError(
            f"unsupported circuit format {data.get('format')!r}")
    ckt = Circuit(data.get("name", "circuit"))
    for rec in data["elements"]:
        ckt.add(from_jsonable(rec))
    ckt.ic.update({node: float(v)
                   for node, v in data.get("ic", {}).items()})
    return ckt


# ---------------------------------------------------------------------------
# shared canonicalization helpers
#
# One construction site for the payload shapes that requests, shards and
# engines all agree on (these used to be copy-pasted between
# requests.py and shards.py).
# ---------------------------------------------------------------------------
def clean_options(options: dict) -> dict:
    """Drop ``None`` entries so that 'omitted' and 'default' hash
    identically - requests built with and without explicit defaults
    would otherwise miss each other's cached results."""
    return {k: v for k, v in options.items() if v is not None}


def circuit_record(circuit) -> dict:
    """Canonicalise any circuit-shaped argument into the serialized
    record: dicts pass through, :class:`Circuit` serializes, compiled
    circuits (anything exposing a ``.circuit`` attribute) serialize
    their inner :class:`Circuit`."""
    if isinstance(circuit, dict):
        return circuit
    if isinstance(circuit, Circuit):
        return circuit_to_dict(circuit)
    inner = getattr(circuit, "circuit", None)
    if isinstance(inner, Circuit):
        return circuit_to_dict(inner)
    raise TypeError("expected a Circuit, CompiledCircuit or circuit dict")


def covariance_payload(param_covariance) -> list | None:
    """Mismatch covariance as nested lists (JSON), or ``None``."""
    if param_covariance is None:
        return None
    return np.asarray(param_covariance, dtype=float).tolist()


def variation_payload(variations) -> dict | None:
    """A :class:`~repro.variation.VariationSpec` (or its already-encoded
    tagged dict) as the tagged-jsonable options payload, or ``None``."""
    if variations is None:
        return None
    if isinstance(variations, dict):
        return variations
    return to_jsonable(variations)


def variation_spec(payload):
    """Decode :func:`variation_payload` output back into a live
    :class:`~repro.variation.VariationSpec` (``None`` passes through)."""
    if payload is None or not isinstance(payload, dict):
        return payload
    return from_jsonable(payload)


def retry_payload(retry) -> dict | None:
    """Canonicalise a retry policy (or its dict form) for an options
    map; duck-typed so this module need not import the jobs layer."""
    if retry is None:
        return None
    if isinstance(retry, dict):
        return dict(retry)
    to_dict = getattr(retry, "to_dict", None)
    if to_dict is None:
        raise TypeError(
            f"retry must be a RetryPolicy, its dict form, or None - "
            f"got {type(retry).__name__!r}")
    return to_dict()


def output_triples(outputs) -> tuple:
    """Canonicalise a dcmatch output map into sorted
    ``(name, pos, neg)`` triples - a hashable, JSON-stable shape.
    Already-canonical triple sequences pass through unchanged."""
    if not isinstance(outputs, dict):
        return tuple(
            (str(name), str(pos), None if neg is None else str(neg))
            for name, pos, neg in outputs)
    rows = []
    for name, spec in outputs.items():
        pos, neg = (spec if isinstance(spec, (tuple, list))
                    else (spec, None))
        rows.append((str(name), str(pos),
                     None if neg is None else str(neg)))
    return tuple(sorted(rows))


def output_map(triples) -> dict:
    """Invert :func:`output_triples` into the engine-facing dict."""
    return {name: (pos if neg is None else (pos, neg))
            for name, pos, neg in triples}


def encode_measures(measures) -> list:
    """Serialize registered measures; keep custom ones live (the
    payload then works in-process / via pickle but refuses JSON)."""
    out = []
    for m in measures:
        if isinstance(m, dict):
            out.append(m)
            continue
        try:
            out.append(to_jsonable(m))
        except TypeError:
            out.append(m)
    return out


def decode_measures(measures) -> list:
    """Decode :func:`encode_measures` output back into live measures
    (live objects pass through)."""
    return [from_jsonable(m) if isinstance(m, dict) else m
            for m in measures]


def measure_tokens(measures) -> list:
    """Hashable stand-ins for a measure list: serialized records pass
    through, live (unregistered) measures hash by type + repr."""
    out = []
    for m in measures:
        if isinstance(m, dict):
            out.append(m)
            continue
        try:
            out.append(to_jsonable(m))
        except TypeError:
            out.append(["live", type(m).__name__, repr(m)])
    return out
