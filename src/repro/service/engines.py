"""The analysis-engine registry (application layer).

Every request kind the service executes is one :class:`AnalysisEngine`
entry: a kind tag, an options **canonicalizer** (keyword arguments ->
the JSON-stable options dict that hashes into the request key), a
**runner** (session + decoded context -> the engine's rich detail
object) and a **summary builder** (detail -> the plain-number summary
that memoizes and crosses process boundaries).  :mod:`~repro.service.
requests` builds requests through the canonicalizers,
:class:`~repro.service.session.AnalysisSession` executes them through
:func:`execute`, and :class:`~repro.service.jobs.JobQueue` consults
:attr:`AnalysisEngine.fan_out` - no layer keeps its own kind list, so
registering an engine (:func:`register_engine`) is the *only* step a
new analysis needs to become a cacheable, serializable, fan-out-able
request.  The ROADMAP estimators (stochastic-testing/gPC, importance
sampling) slot in as peers of the paper's linearized method this way.

This module also owns the session *flows* (compile-through-cache,
PSS-through-cache, the mismatch/Monte-Carlo orchestrations) that used
to live on :class:`AnalysisSession` directly: the session keeps the
stores and the memoization, the engines own every import of
:mod:`repro.core` / :mod:`repro.analysis` (CI enforces that split via
``tools/check_import_layering.py``).

Variation specs
---------------
Engines resolve their mismatch description through
:func:`resolve_covariance`: an explicit ``param_covariance`` (nested
lists) wins, otherwise a declarative
:class:`~repro.variation.VariationSpec` payload (the ``variations``
option) is decoded and lowered onto the circuit's declaration order -
bit-identical to the equivalent hand-built matrix, in-process and on
the far side of a :class:`~repro.service.jobs.JobQueue` pool.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import AnalysisError
from .serialize import (circuit_from_dict, clean_options,
                        covariance_payload, from_jsonable, output_map,
                        retry_payload, to_jsonable, variation_payload,
                        variation_spec)


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AnalysisEngine:
    """One registered request kind.

    Attributes
    ----------
    kind:
        The tag :class:`~repro.service.requests.AnalysisRequest`
        carries.
    canonicalize:
        ``(**kwargs) -> options dict`` - validates the keyword surface
        of the request constructor and returns the JSON-stable options
        dict (``None`` entries dropped, arrays as nested lists, specs
        as tagged payloads) that the request key hashes.
    run:
        ``(session, ctx) -> detail`` - executes the analysis through
        the session caches; *ctx* is the decoded
        :class:`EngineContext`.
    summarize:
        ``(detail, ctx) -> summary dict`` of plain JSON numbers - what
        memoizes and crosses process boundaries.
    payload:
        Which request payload slot this kind uses: ``"measures"``
        (serialized measure list), ``"outputs"`` (dcmatch output
        triples) or ``None``.
    fan_out:
        True when the engine fans its own work across processes
        (Monte-Carlo); :class:`~repro.service.jobs.JobQueue` strips
        ``n_workers`` from such requests inside pool workers so a
        pooled job never nests a second pool.
    description:
        One line for docs and error messages.
    """

    kind: str
    canonicalize: Callable
    run: Callable
    summarize: Callable
    payload: str | None = None
    fan_out: bool = False
    description: str = ""


_ENGINES: dict[str, AnalysisEngine] = {}


def register_engine(engine: AnalysisEngine,
                    replace: bool = False) -> AnalysisEngine:
    """Add *engine* to the registry (idempotent only with *replace*).

    Registration is the single extension point: once registered, the
    kind is constructible via :meth:`AnalysisRequest.build
    <repro.service.requests.AnalysisRequest.build>`, executable by any
    :class:`~repro.service.session.AnalysisSession`, and accepted by
    :class:`~repro.service.jobs.JobQueue`.
    """
    if engine.kind in _ENGINES and not replace:
        raise AnalysisError(
            f"request kind '{engine.kind}' is already registered "
            f"(pass replace=True to override)")
    _ENGINES[engine.kind] = engine
    return engine


def unregister_engine(kind: str) -> None:
    """Remove a kind (primarily for tests of custom engines)."""
    _ENGINES.pop(kind, None)


def registered_kinds() -> tuple[str, ...]:
    """All registered kind tags, sorted."""
    return tuple(sorted(_ENGINES))


def engine_for(kind: str) -> AnalysisEngine:
    """The engine registered for *kind*, or an :class:`AnalysisError`
    listing what *is* registered."""
    try:
        return _ENGINES[kind]
    except KeyError:
        raise AnalysisError(
            f"unknown request kind '{kind}'; registered kinds: "
            f"{list(registered_kinds())}") from None


# ---------------------------------------------------------------------------
# execution context
# ---------------------------------------------------------------------------
@dataclass
class EngineContext:
    """Decoded request payloads, built once per execution."""

    request: object
    #: Live :class:`~repro.circuit.netlist.Circuit` (``None`` for kinds
    #: without a circuit payload, e.g. ``sweep``).
    circuit: object
    #: Mutable copy of the request options.
    options: dict
    #: Decoded live measures (``payload == "measures"`` kinds).
    measures: list = field(default_factory=list)
    #: Output map ``{name: node | (pos, neg)}`` (``"outputs"`` kinds).
    outputs: dict = field(default_factory=dict)
    #: Resolved mismatch covariance (explicit matrix or lowered
    #: variation spec), or ``None``.
    covariance: "np.ndarray | None" = None


def resolve_covariance(options: dict, circuit) -> "np.ndarray | None":
    """The effective mismatch covariance of *options*: an explicit
    ``param_covariance`` wins; otherwise a ``variations`` payload is
    decoded and lowered onto *circuit*'s declaration order."""
    cov = options.get("param_covariance")
    if cov is not None:
        return np.asarray(cov, dtype=float)
    payload = options.get("variations")
    if payload is not None and circuit is not None:
        return variation_spec(payload).covariance(circuit)
    return None


def build_context(request) -> EngineContext:
    engine = engine_for(request.kind)
    circuit = (circuit_from_dict(request.circuit)
               if request.circuit else None)
    options = dict(request.options)
    ctx = EngineContext(request=request, circuit=circuit,
                        options=options)
    if engine.payload == "measures":
        ctx.measures = [from_jsonable(m) for m in request.measures]
    elif engine.payload == "outputs":
        ctx.outputs = output_map(request.outputs)
    ctx.covariance = resolve_covariance(options, circuit)
    return ctx


def execute(session, request, key: str):
    """Run *request* on *session* and wrap the engine's answer into an
    :class:`~repro.service.requests.AnalysisResult` (the body of
    :meth:`AnalysisSession.run <repro.service.session.AnalysisSession.
    run>` after the memo check)."""
    from .requests import AnalysisResult
    engine = engine_for(request.kind)
    t_begin = time.perf_counter()
    ctx = build_context(request)
    detail = engine.run(session, ctx)
    summary = engine.summarize(detail, ctx)
    return AnalysisResult(
        kind=request.kind, request_key=key, summary=summary,
        runtime_seconds=time.perf_counter() - t_begin,
        failures=list(getattr(detail, "failures", []) or []),
        detail=detail)


# ---------------------------------------------------------------------------
# session flows (the engines' own compile/PSS orchestration; every
# repro.core / repro.analysis import of the session layer lives here)
# ---------------------------------------------------------------------------
def compile_cached(session, circuit, cmin: float | None = None,
                   backend=None):
    """Compile *circuit* through *session*'s compile store.

    An already-compiled circuit passes straight through (with the same
    copy-on-backend-override semantics as the functional API).  Backend
    *instances* bypass the cache - they are mutable solver state, not a
    describable configuration.
    """
    from ..analysis.mna import compile_circuit
    from ..circuit.netlist import Circuit, content_digest
    from ..constants import CMIN_DEFAULT
    from ..core.analysis import _as_compiled
    if not isinstance(circuit, Circuit):
        return _as_compiled(circuit, backend=backend)
    backend = backend if backend is not None else session.backend
    cmin_eff = CMIN_DEFAULT if cmin is None else cmin
    if backend is not None and not isinstance(backend, str):
        return compile_circuit(circuit, cmin=cmin_eff, backend=backend)
    key = content_digest("session-compile-v1", circuit.fingerprint(),
                         float(cmin_eff), backend)
    hit = session.compiled.get(key)
    if hit is not None:
        return hit
    compiled = compile_circuit(circuit, cmin=cmin_eff, backend=backend)
    session.compiled.put(key, compiled)
    return compiled


def pss_cached(session, compiled, period: float | None = None,
               state=None, options=None,
               oscillator_anchor: str | None = None,
               t_settle: float | None = None,
               dt_settle: float | None = None):
    """Periodic steady state through *session*'s orbit store.

    Only nominal orbits (``state is None``) are cached: a custom
    ``ParamState`` is mutable engine state without a content identity,
    so those calls always execute.
    """
    from ..analysis.pss import pss, pss_oscillator
    from ..circuit.netlist import content_digest

    def run():
        if oscillator_anchor is not None:
            if t_settle is None or dt_settle is None:
                raise AnalysisError(
                    "oscillator analyses need t_settle and dt_settle")
            return pss_oscillator(compiled, oscillator_anchor,
                                  t_settle, dt_settle, state=state,
                                  options=options)
        if period is None:
            raise AnalysisError("give period= or oscillator_anchor=")
        return pss(compiled, period, state=state, options=options)

    if state is not None:
        return run()
    # The backend tag is part of the key: the orbit is backend-
    # independent but its cached linearization's factorizations are
    # not, and cache_key deliberately excludes the backend.
    key = content_digest(
        "session-pss-v1", compiled.cache_key,
        type(compiled.backend).__name__, period, oscillator_anchor,
        t_settle, dt_settle, options)
    hit = session.pss_store.get(key)
    if hit is not None:
        return hit
    result = run()
    session.pss_store.put(key, result)
    return result


def transient_mismatch_flow(session, circuit, measures,
                            period: float | None = None,
                            oscillator_anchor: str | None = None,
                            t_settle: float | None = None,
                            dt_settle: float | None = None,
                            state=None, pss_options=None,
                            injections=None, param_covariance=None,
                            precomputed_pss=None, backend=None,
                            cmin: float | None = None):
    """The paper's sensitivity analysis through the session caches
    (body of :meth:`AnalysisSession.transient_mismatch`)."""
    from ..core.analysis import run_transient_mismatch
    t_begin = time.perf_counter()
    compiled = compile_cached(session, circuit, cmin=cmin,
                              backend=backend)
    if precomputed_pss is None:
        if period is None and oscillator_anchor is None:
            raise AnalysisError("give period=, oscillator_anchor=, "
                                "or precomputed_pss=")
        pss_result = pss_cached(session, compiled, period=period,
                                state=state, options=pss_options,
                                oscillator_anchor=oscillator_anchor,
                                t_settle=t_settle, dt_settle=dt_settle)
    else:
        pss_result = precomputed_pss
    t_pss = time.perf_counter()
    result = run_transient_mismatch(
        compiled, measures, pss_result,
        injections=injections, param_covariance=param_covariance)
    # the engine only saw the precomputed orbit; restore the true
    # wall-clock split including the (possibly cached) PSS
    result.runtime_breakdown["pss"] = t_pss - t_begin
    result.runtime_seconds = time.perf_counter() - t_begin
    return result


def dc_mismatch_flow(session, circuit, outputs: dict, state=None,
                     param_covariance=None, backend=None,
                     cmin: float | None = None):
    """DC mismatch analysis through the session compile cache."""
    from ..core.analysis import run_dc_mismatch
    compiled = compile_cached(session, circuit, cmin=cmin,
                              backend=backend)
    return run_dc_mismatch(compiled, outputs, state=state,
                           param_covariance=param_covariance)


def mc_transient_flow(session, circuit, measures, **kwargs):
    """Transient Monte-Carlo with the compile shared through the
    session cache (sampling/merge semantics unchanged)."""
    from ..core.montecarlo import monte_carlo_transient
    compiled = compile_cached(session, circuit,
                              cmin=kwargs.pop("cmin", None),
                              backend=kwargs.pop("backend", None))
    return monte_carlo_transient(compiled, measures, **kwargs)


def mc_dc_flow(session, circuit, outputs: dict, n: int, **kwargs):
    """DC Monte-Carlo with the compile shared through the session
    cache."""
    from ..core.montecarlo import monte_carlo_dc
    compiled = compile_cached(session, circuit,
                              cmin=kwargs.pop("cmin", None),
                              backend=kwargs.pop("backend", None))
    return monte_carlo_dc(compiled, outputs, n, **kwargs)


# ---------------------------------------------------------------------------
# shared canonicalization pieces
# ---------------------------------------------------------------------------
def _mismatch_payloads(param_covariance, variations) -> dict:
    """The two mutually exclusive mismatch-description options."""
    if param_covariance is not None and variations is not None:
        raise AnalysisError(
            "give param_covariance= or variations=, not both")
    return {"param_covariance": covariance_payload(param_covariance),
            "variations": variation_payload(variations)}


def _uniform_keywords(retry, n_workers) -> None:
    """Validate the uniform keyword surface on single-solve kinds.

    Every request constructor accepts ``retry=`` / ``n_workers=`` so
    call sites can switch kinds without reshaping their keyword set.
    On kinds that are one deterministic solve there is nothing to fan
    out or retry, so the values are validated and dropped from the
    canonical options (the request key stays independent of them).
    """
    retry_payload(retry)  # raises on a malformed policy shape
    if n_workers is not None and int(n_workers) < 1:
        raise AnalysisError("n_workers must be >= 1")


def _retry_policy(options: dict):
    """Decode a request's ``retry`` option (a plain dict) back into a
    live :class:`~repro.service.jobs.RetryPolicy`."""
    spec = options.get("retry")
    if spec is None:
        return None
    from .jobs import RetryPolicy
    return RetryPolicy.from_dict(spec)


def _mc_summary(detail, ctx) -> dict:
    return {
        "metrics": {name: {"mean": float(st.mean),
                           "sigma": float(st.std),
                           "std_ci_low": float(st.std_ci_low),
                           "std_ci_high": float(st.std_ci_high)}
                    for name, st in detail.stats.items()},
        "n": detail.n,
        "n_failed": detail.n_failed,
    }


# ---------------------------------------------------------------------------
# transient_mismatch
# ---------------------------------------------------------------------------
def _canon_transient_mismatch(period=None, oscillator_anchor=None,
                              t_settle=None, dt_settle=None,
                              pss_options=None, param_covariance=None,
                              variations=None, cmin=None, backend=None,
                              retry=None, n_workers=None):
    _uniform_keywords(retry, n_workers)
    return clean_options({
        "period": period, "oscillator_anchor": oscillator_anchor,
        "t_settle": t_settle, "dt_settle": dt_settle,
        "pss_options": to_jsonable(pss_options),
        "cmin": cmin, "backend": backend,
        **_mismatch_payloads(param_covariance, variations),
    })


def _run_transient_mismatch(session, ctx):
    o = ctx.options
    return transient_mismatch_flow(
        session, ctx.circuit, ctx.measures, period=o.get("period"),
        oscillator_anchor=o.get("oscillator_anchor"),
        t_settle=o.get("t_settle"), dt_settle=o.get("dt_settle"),
        pss_options=from_jsonable(o.get("pss_options")),
        param_covariance=ctx.covariance, backend=o.get("backend"),
        cmin=o.get("cmin"))


def _summary_transient_mismatch(detail, ctx) -> dict:
    return {
        "metrics": {m.name: {"nominal": detail.nominal[m.name],
                             "sigma": detail.sigma(m.name)}
                    for m in ctx.measures},
        "n_params": len(detail.keys),
        "f0": detail.pss.f0,
        "runtime_breakdown": dict(detail.runtime_breakdown),
    }


# ---------------------------------------------------------------------------
# dc_mismatch
# ---------------------------------------------------------------------------
def _canon_dc_mismatch(param_covariance=None, variations=None,
                       cmin=None, backend=None,
                       retry=None, n_workers=None):
    _uniform_keywords(retry, n_workers)
    return clean_options({
        "cmin": cmin, "backend": backend,
        **_mismatch_payloads(param_covariance, variations),
    })


def _run_dc_mismatch(session, ctx):
    o = ctx.options
    return dc_mismatch_flow(session, ctx.circuit, ctx.outputs,
                            param_covariance=ctx.covariance,
                            backend=o.get("backend"), cmin=o.get("cmin"))


def _summary_dc_mismatch(detail, ctx) -> dict:
    return {
        "metrics": {name: {"nominal": detail.nominal[name],
                           "sigma": detail.sigma(name)}
                    for name in ctx.outputs},
        "n_params": len(detail.keys),
    }


# ---------------------------------------------------------------------------
# mc_transient
# ---------------------------------------------------------------------------
def _canon_mc_transient(n=None, t_stop=None, dt=None, window=None,
                        seed=0, sigma_scale=1.0, param_covariance=None,
                        variations=None, chunk_size=250, method="trap",
                        extra_record=None, adaptive=False, rtol=1e-3,
                        atol=1e-6, dt_min=None, dt_max=None,
                        n_workers=None, cmin=None, backend=None,
                        retry=None):
    return clean_options({
        "n": int(n), "t_stop": float(t_stop), "dt": float(dt),
        "window": list(window) if window is not None else None,
        "seed": int(seed), "sigma_scale": float(sigma_scale),
        "chunk_size": int(chunk_size), "method": method,
        "extra_record": list(extra_record) if extra_record else None,
        "adaptive": adaptive or None, "rtol": rtol, "atol": atol,
        "dt_min": dt_min, "dt_max": dt_max, "n_workers": n_workers,
        "cmin": cmin, "backend": backend, "retry": retry_payload(retry),
        **_mismatch_payloads(param_covariance, variations),
    })


def _run_mc_transient(session, ctx):
    o = ctx.options
    window = o.get("window")
    return mc_transient_flow(
        session, ctx.circuit, ctx.measures, n=o["n"],
        t_stop=o["t_stop"], dt=o["dt"],
        window=tuple(window) if window is not None else None,
        seed=o.get("seed", 0), sigma_scale=o.get("sigma_scale", 1.0),
        param_covariance=ctx.covariance,
        chunk_size=o.get("chunk_size", 250),
        method=o.get("method", "trap"),
        extra_record=o.get("extra_record"), backend=o.get("backend"),
        n_workers=o.get("n_workers"), adaptive=o.get("adaptive", False),
        rtol=o.get("rtol", 1e-3), atol=o.get("atol", 1e-6),
        dt_min=o.get("dt_min"), dt_max=o.get("dt_max"),
        cmin=o.get("cmin"), retry=_retry_policy(o))


# ---------------------------------------------------------------------------
# mc_dc
# ---------------------------------------------------------------------------
def _canon_mc_dc(n=None, seed=0, sigma_scale=1.0, param_covariance=None,
                 variations=None, chunk_size=None, n_workers=None,
                 cmin=None, backend=None, retry=None):
    return clean_options({
        "n": int(n), "seed": int(seed),
        "sigma_scale": float(sigma_scale),
        "chunk_size": chunk_size, "n_workers": n_workers,
        "cmin": cmin, "backend": backend, "retry": retry_payload(retry),
        **_mismatch_payloads(param_covariance, variations),
    })


def _run_mc_dc(session, ctx):
    o = ctx.options
    return mc_dc_flow(
        session, ctx.circuit, ctx.outputs, n=o["n"],
        seed=o.get("seed", 0), sigma_scale=o.get("sigma_scale", 1.0),
        param_covariance=ctx.covariance,
        chunk_size=o.get("chunk_size"), n_workers=o.get("n_workers"),
        backend=o.get("backend"), cmin=o.get("cmin"),
        retry=_retry_policy(o))


# ---------------------------------------------------------------------------
# pss
# ---------------------------------------------------------------------------
def _canon_pss(period=None, oscillator_anchor=None, t_settle=None,
               dt_settle=None, pss_options=None, cmin=None,
               backend=None, retry=None, n_workers=None):
    _uniform_keywords(retry, n_workers)
    if period is None and oscillator_anchor is None:
        raise AnalysisError("give period= or oscillator_anchor=")
    return clean_options({
        "period": period, "oscillator_anchor": oscillator_anchor,
        "t_settle": t_settle, "dt_settle": dt_settle,
        "pss_options": to_jsonable(pss_options),
        "cmin": cmin, "backend": backend,
    })


def _run_pss(session, ctx):
    o = ctx.options
    compiled = compile_cached(session, ctx.circuit, cmin=o.get("cmin"),
                              backend=o.get("backend"))
    return pss_cached(session, compiled, period=o.get("period"),
                      options=from_jsonable(o.get("pss_options")),
                      oscillator_anchor=o.get("oscillator_anchor"),
                      t_settle=o.get("t_settle"),
                      dt_settle=o.get("dt_settle"))


def _summary_pss(detail, ctx) -> dict:
    return {
        "metrics": {m.name: {"nominal": float(m.measure_pss(detail))}
                    for m in ctx.measures},
        "f0": detail.f0,
        "n_steps": detail.n_steps,
        "period": detail.period,
        "method": detail.method,
        "engine": detail.engine,
        "residual": float(detail.residual),
    }


# ---------------------------------------------------------------------------
# ac
# ---------------------------------------------------------------------------
def _canon_ac(source=None, freqs=None, amplitude=1.0, cmin=None,
              backend=None, retry=None, n_workers=None):
    _uniform_keywords(retry, n_workers)
    if source is None:
        raise AnalysisError("ac requests need source= (stimulus name)")
    if freqs is None:
        raise AnalysisError("ac requests need freqs= (frequency grid)")
    return clean_options({
        "source": str(source),
        "freqs": [float(f) for f in np.atleast_1d(freqs)],
        "amplitude": float(amplitude),
        "cmin": cmin, "backend": backend,
    })


def _run_ac(session, ctx):
    from ..analysis.ac import ac_analysis
    o = ctx.options
    compiled = compile_cached(session, ctx.circuit, cmin=o.get("cmin"),
                              backend=o.get("backend"))
    return ac_analysis(compiled, o["source"],
                       np.asarray(o["freqs"], dtype=float),
                       amplitude=o.get("amplitude", 1.0))


def _summary_ac(detail, ctx) -> dict:
    metrics = {}
    for name, pos, neg in ctx.request.outputs:
        h = detail.transfer(pos, neg)
        metrics[name] = {
            "magnitude": [float(v) for v in np.abs(h)],
            "phase_deg": [float(v) for v in
                          np.degrees(np.unwrap(np.angle(h)))],
        }
    return {"freqs": [float(f) for f in detail.freqs],
            "metrics": metrics}


# ---------------------------------------------------------------------------
# sweep
# ---------------------------------------------------------------------------
def _canon_sweep(requests=None, labels=None):
    if not requests:
        raise AnalysisError("sweep requests need requests= (sub-request"
                            " dicts)")
    # Normalize through JSON so the canonical options are identical
    # whether the sub-requests arrive live or deserialized (tuples in
    # a live to_dict() would otherwise differ from round-tripped lists).
    subs = []
    for r in requests:
        d = r if isinstance(r, dict) else r.to_dict()
        subs.append(json.loads(json.dumps(d)))
    if labels is not None and len(labels) != len(subs):
        raise AnalysisError(
            f"sweep got {len(labels)} labels for {len(subs)} requests")
    return clean_options({
        "requests": subs,
        "labels": [str(lab) for lab in labels] if labels else None,
    })


def _run_sweep(session, ctx):
    from .requests import AnalysisRequest
    return [session.run(AnalysisRequest.from_dict(d))
            for d in ctx.options["requests"]]


def _summary_sweep(details, ctx) -> dict:
    labels = ctx.options.get("labels") or [None] * len(details)
    cases = []
    for label, res in zip(labels, details):
        cases.append({"label": label, "kind": res.kind,
                      "request_key": res.request_key,
                      "from_cache": res.from_cache,
                      "summary": res.summary})
    return {"n_cases": len(cases), "cases": cases}


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------
register_engine(AnalysisEngine(
    kind="transient_mismatch",
    canonicalize=_canon_transient_mismatch,
    run=_run_transient_mismatch,
    summarize=_summary_transient_mismatch,
    payload="measures",
    description="the paper's linearized transient mismatch analysis"))

register_engine(AnalysisEngine(
    kind="dc_mismatch",
    canonicalize=_canon_dc_mismatch,
    run=_run_dc_mismatch,
    summarize=_summary_dc_mismatch,
    payload="outputs",
    description="DC mismatch (dcmatch) adjoint analysis"))

register_engine(AnalysisEngine(
    kind="mc_transient",
    canonicalize=_canon_mc_transient,
    run=_run_mc_transient,
    summarize=_mc_summary,
    payload="measures",
    fan_out=True,
    description="transient Monte-Carlo over batched lanes"))

register_engine(AnalysisEngine(
    kind="mc_dc",
    canonicalize=_canon_mc_dc,
    run=_run_mc_dc,
    summarize=_mc_summary,
    payload="outputs",
    fan_out=True,
    description="DC Monte-Carlo (dcmatch baseline)"))

register_engine(AnalysisEngine(
    kind="pss",
    canonicalize=_canon_pss,
    run=_run_pss,
    summarize=_summary_pss,
    payload="measures",
    description="periodic steady state as a cacheable request"))

register_engine(AnalysisEngine(
    kind="ac",
    canonicalize=_canon_ac,
    run=_run_ac,
    summarize=_summary_ac,
    payload="outputs",
    description="small-signal AC sweep as a cacheable request"))

register_engine(AnalysisEngine(
    kind="sweep",
    canonicalize=_canon_sweep,
    run=_run_sweep,
    summarize=_summary_sweep,
    description="a batch of sub-requests run (and memoized) as one"))
