"""The supported public API of :mod:`repro` - import from here.

This module is the package's *closed, versioned* surface: everything in
``__all__`` is supported, follows the deprecation policy below, and is
the complete set of entry points the examples, the network daemon and
external callers are expected to use.  Importing from deep modules
(``repro.core.analysis``, ``repro.service.net``, ...) still works but
carries no stability promise - CI enforces that the in-repo examples
import only this facade.

Versioning policy
-----------------
``API_VERSION`` is ``major.minor``:

* **minor** bumps add names or keywords - existing call sites keep
  working unchanged;
* **major** bumps may remove names or change semantics, and only after
  the affected surface spent at least one minor release emitting
  :class:`DeprecationWarning` (warn first, break later - e.g. the
  legacy positional call shapes of ``*_mismatch_analysis``).

Wire formats version independently (``REQUEST_FORMAT_VERSION``,
``SHARD_PROTOCOL_VERSION``); ``GET /health`` on a daemon reports all
three so clients can negotiate before submitting work.

The surface, by layer
---------------------
circuits
    :class:`Circuit` plus element/stimulus types, technology handling,
    and the example-circuit builders used throughout the paper.
analyses
    The paper's :func:`transient_mismatch_analysis` (one deterministic
    solve per mismatch estimate), the dcmatch baseline
    :func:`dc_mismatch_analysis`, Monte-Carlo references, PSS/LPTV
    engines, measures and downstream statistics helpers.
variation
    Declarative mismatch models (:class:`VariationSpec`) lowered onto
    circuits deterministically.
service
    Requests/results/sessions/queues, and the network front-end:
    :func:`serve` / :class:`AnalysisServer` on the daemon side,
    :class:`RemoteSession` plus the ``scatter_*`` fan-out helpers and
    the fault-tolerant :class:`WorkerPool` / :class:`ScatterPolicy`
    dispatch layer on the client side.
"""

from __future__ import annotations

# -- circuits ----------------------------------------------------------
from .circuit import (Circuit, Dc, GateWindow, Pwl, Sine, SmoothPulse,
                      Technology, default_technology)
from .circuits import (five_transistor_ota, inverter_chain,
                       logic_path_testbench, resistor_string_dac,
                       ring_oscillator, strongarm_offset_testbench)
from .circuits.comparator import CORE_DEVICES
from .circuits.dac import dac_tap_names

# -- analyses ----------------------------------------------------------
from .analysis import (compile_circuit, dc_operating_point, dc_sweep,
                       transient)
from .analysis.lptv import periodic_sensitivities
from .analysis.pss import PssOptions, pss, pss_oscillator
from .core import (DcLevel, EdgeDelay, Frequency, dc_mismatch_analysis,
                   monte_carlo_dc, monte_carlo_transient,
                   statistical_waveform, transient_mismatch_analysis,
                   width_sensitivities, width_sensitivity_report)
from .core.contributions import (correlation, covariance,
                                 difference_variance)
from .core.design_sensitivity import sigma_after_resize
from .core.gaussian_mixture import project_mixture, split_gaussian
from .stats import describe, normalized_skewness

# -- variation ---------------------------------------------------------
from .variation import (CorrelationGroup, ParameterVariation,
                        VariationSpec, spec_for_circuit)

# -- errors ------------------------------------------------------------
from .errors import (AnalysisError, AuthenticationError,
                     ConvergenceError, DrainingError, FailureRecord,
                     MeasurementError, NetlistError, QuotaExceededError,
                     ReproError, SolverError, TransportError)

# -- service -----------------------------------------------------------
from .service import (REQUEST_FORMAT_VERSION, SHARD_PROTOCOL_VERSION,
                      AnalysisRequest, AnalysisResult, AnalysisServer,
                      AnalysisSession, FaultPlan, FaultRule, JobQueue,
                      RemoteJob, RemoteSession, RetryPolicy,
                      ScatterPolicy, ScatterResult, ShardResult,
                      ShardSpec, WorkerPool, default_session,
                      from_jsonable, mc_dc_shards, mc_transient_shards,
                      merge_shard_results, registered_kinds, run_shard,
                      scatter_monte_carlo_transient, scatter_shards,
                      serve, to_jsonable, TenantConfig)

#: The facade's own version (see the module docstring for the policy).
API_VERSION = "1.0"

__all__ = [
    "API_VERSION",
    # circuits
    "Circuit", "Technology", "default_technology",
    "Dc", "Sine", "SmoothPulse", "Pwl", "GateWindow",
    "ring_oscillator", "strongarm_offset_testbench",
    "logic_path_testbench", "inverter_chain", "five_transistor_ota",
    "resistor_string_dac", "CORE_DEVICES", "dac_tap_names",
    # analyses
    "compile_circuit", "dc_operating_point", "dc_sweep", "transient",
    "pss", "pss_oscillator", "PssOptions", "periodic_sensitivities",
    "transient_mismatch_analysis", "dc_mismatch_analysis",
    "monte_carlo_transient", "monte_carlo_dc",
    "DcLevel", "EdgeDelay", "Frequency",
    "statistical_waveform", "width_sensitivities",
    "width_sensitivity_report",
    "correlation", "covariance", "difference_variance",
    "sigma_after_resize", "project_mixture", "split_gaussian",
    "describe", "normalized_skewness",
    # variation
    "VariationSpec", "ParameterVariation", "CorrelationGroup",
    "spec_for_circuit",
    # errors
    "ReproError", "NetlistError", "SolverError", "ConvergenceError",
    "AnalysisError", "MeasurementError", "AuthenticationError",
    "QuotaExceededError", "TransportError", "DrainingError",
    "FailureRecord",
    # service
    "AnalysisRequest", "AnalysisResult", "AnalysisSession",
    "default_session", "registered_kinds", "JobQueue", "RetryPolicy",
    "FaultPlan", "FaultRule",
    "REQUEST_FORMAT_VERSION", "SHARD_PROTOCOL_VERSION",
    "ShardSpec", "ShardResult", "mc_transient_shards", "mc_dc_shards",
    "run_shard", "merge_shard_results",
    "to_jsonable", "from_jsonable",
    "serve", "AnalysisServer", "TenantConfig",
    "RemoteSession", "RemoteJob",
    "ScatterResult", "scatter_shards", "scatter_monte_carlo_transient",
    "WorkerPool", "ScatterPolicy",
]
