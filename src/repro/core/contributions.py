"""Contribution breakdowns, correlations and derived-metric statistics.

This module implements the post-processing the paper gets "for free" from
the linear perturbation model (Sections V-D and VII):

* Eq. 10/11 - each metric's variance is the sum of per-source
  contributions ``(S_i sigma_i)^2`` (the SpectreRF-style noise summary);
* Eq. 12 - the covariance between two metrics is the inner product of
  their contribution lists, with no additional simulation;
* Eq. 13 - variances of derived metrics (e.g. DAC DNL, skew) follow from
  the covariance matrix;
* Eq. 6 - correlated mismatch enters as a parameter covariance
  ``C = A A^T``, turning the diagonal sums into quadratic forms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.elements import ParamKey


@dataclass(frozen=True)
class ContributionRow:
    """One line of a mismatch-contribution summary."""

    key: ParamKey
    sensitivity: float
    sigma: float

    @property
    def contribution(self) -> float:
        """Variance contribution ``(S_i sigma_i)^2``."""
        return (self.sensitivity * self.sigma) ** 2


class ContributionTable:
    """Per-source breakdown of one metric's variance (paper Eq. 10)."""

    def __init__(self, metric: str, keys: list[ParamKey],
                 sensitivities: np.ndarray, sigmas: np.ndarray,
                 param_covariance: np.ndarray | None = None):
        if len(keys) != len(sensitivities) or len(keys) != len(sigmas):
            raise ValueError("keys/sensitivities/sigmas length mismatch")
        self.metric = metric
        self.keys = list(keys)
        self.sensitivities = np.asarray(sensitivities, dtype=float)
        self.sigmas = np.asarray(sigmas, dtype=float)
        self.param_covariance = param_covariance

    @property
    def scaled(self) -> np.ndarray:
        """``S_i sigma_i`` - the vector whose inner products give
        covariances (paper Eq. 12)."""
        return self.sensitivities * self.sigmas

    @property
    def variance(self) -> float:
        if self.param_covariance is not None:
            s = self.sensitivities
            return float(s @ self.param_covariance @ s)
        return float(np.sum(self.scaled ** 2))

    @property
    def sigma(self) -> float:
        return float(np.sqrt(self.variance))

    def rows(self, sort: bool = True) -> list[ContributionRow]:
        rows = [ContributionRow(k, float(s), float(g))
                for k, s, g in zip(self.keys, self.sensitivities,
                                   self.sigmas)]
        if sort:
            rows.sort(key=lambda r: r.contribution, reverse=True)
        return rows

    def fraction_of(self, element: str) -> float:
        """Fraction of the variance contributed by one element's
        parameters (independent-mismatch case)."""
        var = self.variance
        if var == 0.0:
            return 0.0
        mask = np.array([k[0] == element for k in self.keys])
        return float(np.sum(self.scaled[mask] ** 2) / var)

    def summary(self, top: int | None = 10) -> str:
        """SpectreRF-style text table, largest contributors first."""
        lines = [f"mismatch contributions to '{self.metric}' "
                 f"(sigma = {self.sigma:.6g})",
                 f"{'parameter':<24s} {'S_i':>13s} {'sigma_i':>11s} "
                 f"{'(S.sigma)^2':>13s} {'share':>7s}"]
        var = max(self.variance, 1e-300)
        for row in self.rows()[:top]:
            lines.append(
                f"{row.key[0] + '.' + row.key[1]:<24s} "
                f"{row.sensitivity:>13.4e} {row.sigma:>11.3e} "
                f"{row.contribution:>13.4e} "
                f"{row.contribution / var:>6.1%}")
        return "\n".join(lines)


def covariance(table_a: ContributionTable,
               table_b: ContributionTable) -> float:
    """Covariance of two metrics from their contribution lists (Eq. 12).

    Both tables must be built over the same parameter list (same
    injections in the same order), which is automatic when they come from
    one mismatch analysis.
    """
    if table_a.keys != table_b.keys:
        raise ValueError("contribution tables cover different parameters")
    if table_a.param_covariance is not None:
        c = table_a.param_covariance
        return float(table_a.sensitivities @ c @ table_b.sensitivities)
    return float(np.dot(table_a.scaled, table_b.scaled))


def correlation(table_a: ContributionTable,
                table_b: ContributionTable) -> float:
    """Correlation coefficient ``rho = cov / (sigma_A sigma_B)``."""
    denom = table_a.sigma * table_b.sigma
    if denom == 0.0:
        return 0.0
    return covariance(table_a, table_b) / denom


def difference_variance(table_a: ContributionTable,
                        table_b: ContributionTable) -> float:
    """Variance of ``A - B`` (paper Eq. 13, the DNL formula):
    ``sigma_A^2 + sigma_B^2 - 2 cov(A, B)``."""
    return (table_a.variance + table_b.variance
            - 2.0 * covariance(table_a, table_b))


def linear_combination_variance(tables: list[ContributionTable],
                                weights: np.ndarray) -> float:
    """Variance of ``sum_j w_j P_j`` via the full covariance matrix."""
    weights = np.asarray(weights, dtype=float)
    if len(tables) != weights.size:
        raise ValueError("one weight per table required")
    total = 0.0
    for i, ti in enumerate(tables):
        for j, tj in enumerate(tables):
            total += weights[i] * weights[j] * covariance(ti, tj)
    return float(total)


def correlated_covariance_from_mixing(a: np.ndarray) -> np.ndarray:
    """Parameter covariance ``C = A A^T`` from a mixing matrix (Eq. 6).

    Rows of *A* correspond to mismatch parameters, columns to independent
    unit-variance sources ``X_j``; the paper constructs correlated
    mismatch exactly this way.
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    return a @ a.T
