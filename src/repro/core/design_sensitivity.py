"""Design-parameter sensitivities of performance variation (Section VII).

The contribution breakdown already splits a metric's variance into
per-source terms ``sigma_P,i^2 = (S_i sigma_i)^2``.  Because the Pelgrom
sigmas depend on device geometry (Eqs. 4-5),

.. math:: \\sigma_{VT}^2 = A_{VT}^2/(W L), \\qquad
          \\sigma_{\\beta}^2/\\beta^2 = A_\\beta^2/(W L),

the chain rule gives the impact of a transistor's width on the total
variance at *no additional simulation cost* (Eqs. 14-16):

.. math:: \\frac{\\partial \\sigma_P^2}{\\partial W}
          = -\\frac{\\sigma_{P,VT}^2 + \\sigma_{P,\\beta}^2}{W}.

(Both mismatch variances scale as ``1/W``, so each contribution's
derivative is ``-contribution/W``.)  This is the quantity the paper's
Fig. 10(b) ranks across the StrongARM comparator to show that the input
pair dominates the offset and should be sized up first.

A caveat the paper also makes: the formula tracks only the *explicit*
``sigma(W)`` dependence.  Changing a width also moves the bias point and
thus the sensitivities ``S_i`` themselves; for small sizing steps the
explicit term dominates, which is what makes the ranking useful during
design iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.mosfet import Mosfet
from .contributions import ContributionTable


@dataclass(frozen=True)
class WidthSensitivity:
    """Impact of one transistor's width on a metric's variance."""

    device: str
    width: float
    #: Variance contributed by this device's mismatch parameters.
    variance_contribution: float
    #: ``d sigma_P^2 / dW`` [variance unit per metre].
    dvar_dw: float
    #: Fractional variance reduction per fractional width increase:
    #: ``-(W/sigma_P^2) d sigma_P^2/dW`` - the normalised ranking shown
    #: in the paper's Fig. 10(b).
    normalized_impact: float


def width_sensitivities(table: ContributionTable, circuit
                        ) -> list[WidthSensitivity]:
    """Rank every MOSFET's width impact on a metric's variance.

    Parameters
    ----------
    table:
        Contribution table of the metric (from a mismatch analysis).
    circuit:
        The :class:`~repro.circuit.Circuit` the table was computed on
        (supplies device widths).

    Returns
    -------
    list of :class:`WidthSensitivity`, largest impact first.
    """
    total_var = max(table.variance, 1e-300)
    per_device: dict[str, float] = {}
    for key, scaled in zip(table.keys, table.scaled):
        ename, pname = key
        if pname in ("vt0", "beta_rel"):
            per_device[ename] = per_device.get(ename, 0.0) + scaled ** 2

    out = []
    for ename, var_i in per_device.items():
        el = circuit[ename]
        if not isinstance(el, Mosfet):
            continue
        dvar_dw = -var_i / el.w
        out.append(WidthSensitivity(
            device=ename, width=el.w, variance_contribution=var_i,
            dvar_dw=dvar_dw,
            normalized_impact=var_i / total_var))
    out.sort(key=lambda r: r.normalized_impact, reverse=True)
    return out


def width_sensitivity_report(table: ContributionTable, circuit,
                             labels: dict[str, str] | None = None) -> str:
    """Text rendering of the Fig. 10(b) ranking."""
    rows = width_sensitivities(table, circuit)
    lines = [f"width sensitivities of var({table.metric}) "
             f"(sigma = {table.sigma:.4g})",
             f"{'device':<10s} {'W [um]':>8s} {'d var/dW':>13s} "
             f"{'share':>7s}  role"]
    for r in rows:
        role = (labels or {}).get(r.device, "")
        lines.append(f"{r.device:<10s} {r.width * 1e6:>8.2f} "
                     f"{r.dvar_dw:>13.4e} {r.normalized_impact:>6.1%}  "
                     f"{role}")
    return "\n".join(lines)


def sigma_after_resize(table: ContributionTable, circuit,
                       new_widths: dict[str, float]) -> float:
    """Predicted metric sigma after resizing devices (explicit term only).

    Each device's contribution scales as ``W_old / W_new`` (both Pelgrom
    variances go as ``1/W``); other contributions are unchanged.  Useful
    for quick what-if sizing during yield optimisation.
    """
    var = 0.0
    for key, scaled in zip(table.keys, table.scaled):
        ename = key[0]
        factor = 1.0
        if ename in new_widths:
            el = circuit[ename]
            factor = el.w / new_widths[ename]
        var += factor * scaled ** 2
    return float(np.sqrt(var))
