"""Interpreting cyclostationary noise PSDs as performance variation.

Section V of the paper reads performance variances off the simulated
noise PSD at 1 Hz offsets from the harmonics of the periodic steady
state.  This package's primary engine returns time-domain sensitivities
directly, so these conversions serve two purposes:

* expose the *paper-faithful interface*: given a sideband PSD reading
  ``P1`` and the carrier amplitude ``Ac``, produce sigma(phase),
  sigma(delay) (Eq. 8) and sigma(frequency) (Eq. 9);
* go the other way, synthesising the PSD readings an RF simulator would
  report from the computed variances, so the two views can be
  cross-checked (the tests do exactly that against the harmonic-domain
  noise engine).

Convention note
---------------
We use the single-sideband convention throughout: a pseudo-noise source
whose PSD *value* at 1 Hz equals the mismatch variance ``sigma_p^2``
produces, at 1 Hz offset from sideband ``N``, the PSD value
``|X_N|^2 sigma_p^2`` where ``X_N`` is the LPTV conversion gain.  Under
this convention the narrowband-PM identities are

``sigma_phi^2 = 4 P1 / Ac^2``,
``sigma_D^2 = 4 P1 / ((2 pi f0)^2 Ac^2)``,
``sigma_f^2 = 4 f^2 P1 / Ac^2``.

The paper's Eq. 7/8 carry a factor 2 instead of 4 (its Eq. 9 matches);
published PSD conventions differ between simulators by exactly such
factors of two (SSB vs DSB).  We keep the self-consistent SSB set and
validate the whole chain against Monte-Carlo, which is convention-free.
The ``convention="paper"`` switch reproduces the paper's literal
formulas.

This module also builds the paper's Fig. 8 "statistical waveform": the
PSS trajectory with a +/- sigma(t) band computed from the time-domain
sensitivity waveforms.
"""

from __future__ import annotations

import numpy as np

from ..analysis.lptv import SensitivitySolution
from ..constants import PSEUDO_NOISE_FREQUENCY, TWO_PI


def variance_from_baseband_psd(psd_value: float) -> float:
    """DC-quantity variance from the baseband PSD at 1 Hz (Section V-A).

    Under the pseudo-noise normalisation the PSD value *is* the
    variance: e.g. 8.24e-4 V^2/Hz -> sigma = 28.7 mV (the paper's
    example).
    """
    return psd_value


def phase_variance_from_psd(p1: float, ac: float,
                            convention: str = "repro") -> float:
    """``sigma_phi^2`` from the first-sideband PSD ``P1`` (Eq. 7)."""
    factor = 2.0 if convention == "paper" else 4.0
    return factor * p1 / (ac * ac)


def delay_variance_from_psd(p1: float, f0: float, ac: float,
                            convention: str = "repro") -> float:
    """``sigma_D^2`` from the first-sideband PSD ``P1`` (Eq. 8)."""
    return phase_variance_from_psd(p1, ac, convention) / (TWO_PI * f0) ** 2


def frequency_variance_from_psd(p1: float, ac: float,
                                f: float = PSEUDO_NOISE_FREQUENCY,
                                convention: str = "repro") -> float:
    """``sigma_f^2`` from the first-sideband PSD ``P1`` (Eq. 9)."""
    factor = 4.0  # the paper's Eq. 9 agrees with the SSB convention
    if convention == "paper":
        factor = 4.0
    return factor * f * f * p1 / (ac * ac)


def psd_from_delay_variance(var_delay: float, f0: float, ac: float
                            ) -> float:
    """Inverse of :func:`delay_variance_from_psd` (SSB convention)."""
    return var_delay * (TWO_PI * f0) ** 2 * ac * ac / 4.0


def psd_from_frequency_variance(var_freq: float, ac: float,
                                f: float = PSEUDO_NOISE_FREQUENCY
                                ) -> float:
    """Inverse of :func:`frequency_variance_from_psd` (SSB convention)."""
    return var_freq * ac * ac / (4.0 * f * f)


def statistical_waveform(sens: SensitivitySolution, node: str,
                         neg: str | None = None,
                         sigma_scale: float = 1.0
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The paper's Fig. 8: PSS waveform with its +/- sigma(t) band.

    Returns ``(t, v_pss(t), sigma_v(t))``.  The band at each time point
    is the RMS combination of all mismatch contributions evaluated from
    the periodic sensitivity waveforms - the time-domain equivalent of
    measuring the noise PSD at every point of the cycle.
    """
    pss = sens.pss
    c = pss.compiled
    v = pss.x[:, c.node_index[node]].copy()
    if neg is not None:
        v -= pss.x[:, c.node_index[neg]]
    w = sens.node_waveforms(node, neg)             # (N+1, m)
    scaled = w * (sigma_scale * sens.sigmas)
    sigma_t = np.sqrt(np.sum(scaled * scaled, axis=1))
    return pss.t.copy(), v, sigma_t
