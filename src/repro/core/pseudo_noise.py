"""Mismatch -> pseudo-noise mapping (paper Section III).

The paper's recipe models a mismatch parameter with variance
``sigma_p^2`` as a 1/f pseudo-noise source whose PSD equals
``sigma_p^2`` at 1 Hz - low enough in frequency to look constant over
any bounded observation, and with negligible high-frequency content so
LPTV noise folding cannot contaminate the reading.

In this package the pseudo-noise source is realised *exactly* as the
parameter-derivative injection (:class:`repro.analysis.mna.Injection`):
a deviation ``delta p`` perturbs the MNA equations by

.. math:: \\frac{d}{dt}\\Big(\\frac{\\partial q}{\\partial p}\\Big)
          \\delta p + \\frac{\\partial i}{\\partial p}\\, \\delta p,

whose quasi-DC response is what the LPTV solver computes.  Evaluating
the derivatives along the periodic steady state reproduces the paper's
bias-dependent modulations (Figs. 3-4):

=====================  =======================================
mismatch parameter     equivalent injection along the PSS
=====================  =======================================
MOS ``VT0``            current ``-gm(t)`` from drain to source
MOS ``beta_rel``       current ``I_DS(t)`` from drain to source
resistor ``R``         current ``-I_R(t)/R`` across the resistor
                       (Norton form of the paper's series EMF
                       ``I_R delta R``)
capacitor ``C``        charge ``v_C(t)`` across the capacitor
inductor ``L``         flux ``i_L(t)`` in the branch equation
=====================  =======================================

This module provides the PSD-level view of those sources for the
harmonic-domain noise engine and for documentation/reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.mna import CompiledCircuit, Injection, ParamState
from ..circuit.elements import PsdShape
from ..constants import PSEUDO_NOISE_FREQUENCY


@dataclass(frozen=True)
class PseudoNoisePsd:
    """The 1/f pseudo-noise source equivalent to one mismatch parameter.

    ``psd(f) = sigma^2 * (f_ref / f)``: the paper's flicker-shaped
    source whose value at ``f_ref`` (1 Hz) is the mismatch variance.
    """

    key: tuple[str, str]
    sigma: float
    f_ref: float = PSEUDO_NOISE_FREQUENCY

    def psd(self, f: float | np.ndarray) -> float | np.ndarray:
        return self.sigma ** 2 * self.f_ref / np.asarray(f, dtype=float)

    @property
    def shape(self) -> PsdShape:
        return PsdShape.FLICKER


def pseudo_noise_sources(compiled: CompiledCircuit
                         ) -> list[PseudoNoisePsd]:
    """The PSD description of every mismatch parameter in a circuit."""
    return [PseudoNoisePsd(key=d.key, sigma=d.sigma)
            for d in compiled.circuit.mismatch_decls()]


def injection_table(compiled: CompiledCircuit, state: ParamState,
                    x_orbit: np.ndarray) -> list[Injection]:
    """Alias for :meth:`CompiledCircuit.mismatch_injections`, named after
    the paper's flow diagram (Fig. 2, "convert mismatch to pseudo-noise
    sources")."""
    return compiled.mismatch_injections(state, x_orbit)


def folding_safety_ratio(f0: float,
                         f_ref: float = PSEUDO_NOISE_FREQUENCY) -> float:
    """How much weaker the pseudo-noise is at the first harmonic than at
    the reading frequency.

    LPTV analysis folds noise from ``k f0 +/- f`` into the reading at
    ``f``; a 1/f source is weaker there by ``f0 / f_ref``.  The paper's
    Section III argues this ratio must be large - for a 1 GHz clock and a
    1 Hz reference it is 1e9, which is why folding is negligible.
    """
    return f0 / f_ref
