"""Performance measures shared by the linear engine and Monte-Carlo.

A :class:`Measure` maps a simulated circuit response to one scalar
performance number, two ways:

* :meth:`Measure.measure_waveset` extracts the number from waveforms -
  used on Monte-Carlo transients *and* on the nominal PSS orbit;
* :meth:`Measure.sensitivities` maps an LPTV sensitivity solution to the
  vector ``S_i = dP/dp_i`` over all mismatch parameters - the paper's
  Eq. 2 coefficients, from which every statistic follows.

Keeping both paths inside one object guarantees that the proposed method
and the MC baseline measure *exactly the same quantity*, which is what
makes the Table II comparison meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.lptv import SensitivitySolution
from ..analysis.pss import PssResult
from ..errors import MeasurementError
from ..waveform import WaveformSet


class Measure:
    """Base class: one scalar performance metric."""

    name: str

    def measure_waveset(self, ws: WaveformSet) -> float:
        """Extract the metric from a (steady-state) waveform window."""
        raise NotImplementedError

    def measure_pss(self, pss: PssResult) -> float:
        """Nominal metric value on the PSS orbit."""
        return self.measure_waveset(pss.waveset())

    def sensitivities(self, sens: SensitivitySolution) -> np.ndarray:
        """``dP/dp_i`` for every injection in *sens* (paper Eq. 2)."""
        raise NotImplementedError

    def required_nodes(self) -> list[str]:
        """Node names Monte-Carlo transients must record."""
        raise NotImplementedError


@dataclass
class DcLevel(Measure):
    """Period-average of a node voltage (optionally differential).

    This is the reading used for "DC-like" metrics measured from a
    periodic steady state - the comparator input offset ``VOS`` of the
    paper's Fig. 6 testbench (Section V-A: the baseband component).
    """

    name: str
    node: str
    neg: str | None = None

    def measure_waveset(self, ws: WaveformSet) -> float:
        w = ws[self.node] if self.neg is None else ws[self.node, self.neg]
        return w.mean()

    def sensitivities(self, sens: SensitivitySolution) -> np.ndarray:
        w = sens.node_waveforms(self.node, self.neg)       # (N+1, m)
        t = sens.pss.t
        span = t[-1] - t[0]
        return np.trapezoid(w, t, axis=0) / span

    def required_nodes(self) -> list[str]:
        return [self.node] + ([self.neg] if self.neg else [])


@dataclass
class EdgeDelay(Measure):
    """Delay from a threshold crossing on one node to one on another.

    The variation reading follows the paper's Section V-B: a waveform
    time-shift maps to ``delta t_c = -delta v(t_c) / vdot(t_c)`` at each
    crossing, and the delay sensitivity is the difference of the two
    crossing shifts.  Crossings on ideal source nodes have zero shift
    automatically (their sensitivity waveforms vanish), matching the
    usual "input edge is the reference" convention.
    """

    name: str
    from_node: str
    to_node: str
    threshold: float
    from_edge: str = "rise"
    to_edge: str = "fall"
    from_occurrence: int = 0
    to_occurrence: int = 0

    def measure_waveset(self, ws: WaveformSet) -> float:
        c0 = ws[self.from_node].crossing(self.threshold, self.from_edge,
                                         self.from_occurrence)
        c1 = ws[self.to_node].crossing(self.threshold, self.to_edge,
                                       self.to_occurrence, t_start=c0.time)
        return c1.time - c0.time

    def _crossing_shifts(self, sens: SensitivitySolution, node: str,
                         edge: str, occurrence: int,
                         t_start: float | None = None
                         ) -> tuple[float, np.ndarray]:
        """Crossing time and its per-parameter shifts on the PSS orbit."""
        pss = sens.pss
        wave = pss.waveform(node)
        c = wave.crossing(self.threshold, edge, occurrence, t_start=t_start)
        if abs(c.slope) < 1e-30:
            raise MeasurementError(
                f"measure '{self.name}': zero slope at the {edge} crossing "
                f"of '{node}'")
        w = sens.node_waveforms(node)                       # (N+1, m)
        frac = (c.time - pss.t[c.index]) / (pss.t[c.index + 1]
                                            - pss.t[c.index])
        dv = (1.0 - frac) * w[c.index] + frac * w[c.index + 1]
        return c.time, -dv / c.slope

    def sensitivities(self, sens: SensitivitySolution) -> np.ndarray:
        t0, shift0 = self._crossing_shifts(sens, self.from_node,
                                           self.from_edge,
                                           self.from_occurrence)
        _, shift1 = self._crossing_shifts(sens, self.to_node, self.to_edge,
                                          self.to_occurrence, t_start=t0)
        return shift1 - shift0

    def required_nodes(self) -> list[str]:
        return [self.from_node, self.to_node]


@dataclass
class Frequency(Measure):
    """Oscillation frequency of an autonomous circuit.

    Monte-Carlo lanes measure it from threshold-crossing intervals of
    *node*; the linear engine reads it from the oscillator period
    sensitivities ``df/dp = -dT/dp / T^2`` delivered by the bordered
    shooting solve (paper Section V-C).
    """

    name: str
    node: str
    skip_cycles: int = 2

    def measure_waveset(self, ws: WaveformSet) -> float:
        return ws[self.node].frequency(skip=self.skip_cycles)

    def measure_pss(self, pss: PssResult) -> float:
        return pss.f0

    def sensitivities(self, sens: SensitivitySolution) -> np.ndarray:
        return sens.df_dp()

    def required_nodes(self) -> list[str]:
        return [self.node]
