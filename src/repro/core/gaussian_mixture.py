"""Gaussian-mixture extension for non-Gaussian mismatch (Section VIII).

The linear perturbation model maps Gaussian mismatch to an exactly
Gaussian performance distribution and cannot represent skew or
heavy tails.  The paper's Fig. 13 sketches the remedy it discusses:
split a non-Gaussian (or large-sigma) mismatch distribution into a sum
of narrow Gaussians, project each component through its *own local*
linear model (a separate PSS + LPTV solve centred on the component
mean), and superpose the projected Gaussians.

The cost grows linearly with the number of components - the paper warns
this escalates quickly with many parameters, which is why it remains an
extension rather than the default.  Here it is implemented for one (or
a few) dominant parameters, which is also how a designer would use it.

The declarative entry point is
:meth:`repro.variation.VariationSpec.mixture`, which lowers a named
``uniform``/``lognormal`` parameter variation onto
:func:`split_gaussian` / :func:`project_mixture` component lists;
:class:`MixtureComponent` is registered with the service serializer,
so those lists ride inside JSON requests like any other value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..circuit.elements import ParamKey
from ..stats import gaussian_pdf


@dataclass(frozen=True)
class MixtureComponent:
    """One Gaussian component of a parameter distribution."""

    weight: float
    mean: float
    sigma: float


def split_gaussian(sigma: float, n_components: int = 5,
                   span_sigmas: float = 3.0) -> list[MixtureComponent]:
    """Split ``N(0, sigma^2)`` into narrow equally spaced components.

    Component means are placed uniformly over ``+/- span_sigmas * sigma``
    and weighted by the parent PDF; component sigmas equal the grid
    spacing so the mixture stays smooth.  For moderate ``n_components``
    this reproduces the parent distribution closely while each component
    is narrow enough for the local linear model to hold.
    """
    if n_components < 2:
        raise ValueError("need at least two components")
    centres = np.linspace(-span_sigmas * sigma, span_sigmas * sigma,
                          n_components)
    spacing = centres[1] - centres[0]
    weights = gaussian_pdf(centres, 0.0, sigma)
    weights = weights / weights.sum()
    return [MixtureComponent(float(w), float(c), float(spacing / 2.0))
            for w, c in zip(weights, centres)]


@dataclass
class ProjectedMixture:
    """Performance distribution as a mixture of projected Gaussians."""

    components: list[MixtureComponent]

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        for c in self.components:
            out += c.weight * gaussian_pdf(x, c.mean, c.sigma)
        return out

    @property
    def mean(self) -> float:
        return float(sum(c.weight * c.mean for c in self.components))

    @property
    def variance(self) -> float:
        mu = self.mean
        return float(sum(c.weight * (c.sigma ** 2 + (c.mean - mu) ** 2)
                         for c in self.components))

    @property
    def sigma(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def skewness(self) -> float:
        """Standardised third moment of the mixture."""
        mu, var = self.mean, self.variance
        third = sum(
            c.weight * ((c.mean - mu) ** 3
                        + 3.0 * (c.mean - mu) * c.sigma ** 2)
            for c in self.components)
        return float(third / var ** 1.5)


def project_mixture(
        local_model: Callable[[float], tuple[float, float]],
        components: Sequence[MixtureComponent]) -> ProjectedMixture:
    """Project a parameter mixture through per-component linear models.

    Parameters
    ----------
    local_model:
        ``local_model(p_centre) -> (metric_value, dmetric_dp)``: the
        nominal metric and its local sensitivity with the chosen
        parameter held at ``p_centre`` (one PSS + LPTV solve per call).
    components:
        The parameter-space mixture (e.g. from :func:`split_gaussian`).

    Returns
    -------
    ProjectedMixture
        Each component maps to a Gaussian centred at the local metric
        value with sigma ``|S(p_centre)| * sigma_component`` - the
        superposition can be arbitrarily non-Gaussian (paper Fig. 13).
    """
    projected = []
    for comp in components:
        value, slope = local_model(comp.mean)
        projected.append(MixtureComponent(
            weight=comp.weight, mean=value,
            sigma=abs(slope) * comp.sigma))
    return ProjectedMixture(projected)


def project_mixture_with_background(
        local_model: Callable[[float], tuple[float, float, float]],
        components: Sequence[MixtureComponent]) -> ProjectedMixture:
    """Like :func:`project_mixture` but each local model also reports the
    RMS contribution of all *other* (Gaussian, small) parameters, which
    is added in quadrature to the component width.

    ``local_model(p_centre) -> (value, dmetric_dp, sigma_background)``.
    """
    projected = []
    for comp in components:
        value, slope, bg = local_model(comp.mean)
        width = np.hypot(abs(slope) * comp.sigma, bg)
        projected.append(MixtureComponent(
            weight=comp.weight, mean=value, sigma=float(width)))
    return ProjectedMixture(projected)


def mixture_for_param(key: ParamKey, sigma: float,
                      n_components: int = 7,
                      span_sigmas: float = 3.0
                      ) -> tuple[ParamKey, list[MixtureComponent]]:
    """Convenience: the split of one circuit parameter's distribution."""
    return key, split_gaussian(sigma, n_components, span_sigmas)
