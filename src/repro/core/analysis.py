"""The paper's analysis flows.

:func:`transient_mismatch_analysis` is the headline method (paper Fig. 2):

1. convert every declared mismatch parameter into its equivalent
   pseudo-noise injection (Section III),
2. find the periodic steady state (Section IV),
3. solve the LPTV small-signal system once for all injections
   (Section IV/V) - the time-domain shooting formulation, exact on the
   PSS discretisation,
4. map the periodic sensitivity waveforms through the requested measures
   and assemble contribution tables (Section V), from which variances,
   correlations (Eq. 12) and design sensitivities (Section VII) all
   follow without further simulation.

:func:`dc_mismatch_analysis` is the prior art the paper extends ([8], [9]
- `.SENS`/dcmatch): the same machinery degenerates to a single adjoint
solve at the DC operating point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..analysis.dcop import dc_operating_point
from ..analysis.lptv import (PeriodicLinearization, SensitivitySolution)
from ..analysis.mna import CompiledCircuit, Injection, ParamState
from ..analysis.pss import PssOptions, PssResult
from ..circuit.elements import ParamKey
from ..circuit.netlist import Circuit
from ..errors import AnalysisError
from .contributions import (ContributionTable, correlation, covariance)
from .measures import Measure


@dataclass
class MismatchAnalysisResult:
    """Everything one pseudo-noise mismatch analysis produces.

    The per-measure :class:`ContributionTable` objects carry the full
    linear model; helper methods expose the paper's derived quantities.
    """

    compiled: CompiledCircuit
    pss: PssResult | None
    sens: SensitivitySolution | None
    measures: list[Measure]
    nominal: dict[str, float]
    tables: dict[str, ContributionTable]
    runtime_seconds: float = 0.0
    #: Wall-clock split: pss / linearization+solve / measures.
    runtime_breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def keys(self) -> list[ParamKey]:
        first = next(iter(self.tables.values()))
        return first.keys

    def sigma(self, metric: str) -> float:
        """Standard deviation of *metric* (paper Eq. 1 generalised)."""
        return self._table(metric).sigma

    def variance(self, metric: str) -> float:
        return self._table(metric).variance

    def mean(self, metric: str) -> float:
        """Nominal (zero-mismatch) value; the linear model's mean."""
        return self.nominal[metric]

    def contributions(self, metric: str) -> ContributionTable:
        return self._table(metric)

    def correlation(self, metric_a: str, metric_b: str) -> float:
        """Correlation between two metrics (paper Eq. 12, Table I)."""
        return correlation(self._table(metric_a), self._table(metric_b))

    def covariance(self, metric_a: str, metric_b: str) -> float:
        return covariance(self._table(metric_a), self._table(metric_b))

    def correlation_matrix(self) -> tuple[list[str], np.ndarray]:
        names = [m.name for m in self.measures]
        k = len(names)
        rho = np.eye(k)
        for i in range(k):
            for j in range(i + 1, k):
                rho[i, j] = rho[j, i] = self.correlation(names[i], names[j])
        return names, rho

    def report(self, top: int = 8) -> str:
        lines = [f"pseudo-noise mismatch analysis of "
                 f"'{self.compiled.circuit.name}'"]
        if self.pss is not None:
            lines.append(f"  PSS: f0 = {self.pss.f0:.6g} Hz, "
                         f"{self.pss.n_steps} pts, engine "
                         f"{self.pss.engine}")
        lines.append(f"  parameters: {len(self.keys)} mismatch sources; "
                     f"runtime {self.runtime_seconds:.2f} s")
        for m in self.measures:
            t = self._table(m.name)
            lines.append("")
            lines.append(f"  {m.name}: nominal {self.nominal[m.name]:.6g}, "
                         f"sigma {t.sigma:.6g}")
            lines.extend("    " + row
                         for row in t.summary(top).splitlines()[1:])
        return "\n".join(lines)

    def _table(self, metric: str) -> ContributionTable:
        try:
            return self.tables[metric]
        except KeyError:
            raise AnalysisError(
                f"no metric named '{metric}'; available: "
                f"{sorted(self.tables)}") from None


def _as_compiled(circuit, backend=None) -> CompiledCircuit:
    """Compile *circuit* if needed; *backend* (name or instance, see
    :mod:`repro.linalg`) overrides the linear-solver backend.

    A ``CompiledCircuit`` passed with a backend override is shallow-
    copied so the per-call override never mutates the caller's object
    (use :meth:`CompiledCircuit.set_backend` for a persistent switch).
    """
    if isinstance(circuit, CompiledCircuit):
        if backend is None:
            return circuit
        import copy
        return copy.copy(circuit).set_backend(backend)
    if isinstance(circuit, Circuit):
        from ..analysis.mna import compile_circuit
        return compile_circuit(circuit, backend=backend)
    raise TypeError("expected a Circuit or CompiledCircuit")


def run_transient_mismatch(
        compiled: CompiledCircuit, measures: list[Measure],
        pss_result: PssResult,
        injections: list[Injection] | None = None,
        param_covariance: np.ndarray | None = None,
) -> MismatchAnalysisResult:
    """Engine of the sensitivity analysis, given the PSS orbit.

    This is the post-PSS half of the paper's flow (steps 1, 3-4 of the
    module docstring): build pseudo-noise injections on the orbit,
    solve the LPTV system once for all of them, and map the sensitivity
    waveforms through the measures.  Callers obtain *pss_result*
    themselves - :meth:`AnalysisSession.transient_mismatch
    <repro.service.session.AnalysisSession.transient_mismatch>` from
    its orbit cache, direct callers from :func:`~repro.analysis.pss.
    pss` - and the session patches ``runtime_breakdown["pss"]`` with
    the true orbit cost afterwards.
    """
    t_start = time.perf_counter()
    if injections is None:
        injections = compiled.mismatch_injections(pss_result.state,
                                                  pss_result.x)
    if not injections:
        raise AnalysisError(
            f"circuit '{compiled.circuit.name}' declares no mismatch "
            "parameters")
    lin = PeriodicLinearization(pss_result)
    sens = lin.solve(injections)
    t_lptv = time.perf_counter()

    sigmas = sens.sigmas
    keys = sens.keys
    nominal: dict[str, float] = {}
    tables: dict[str, ContributionTable] = {}
    for m in measures:
        nominal[m.name] = m.measure_pss(pss_result)
        s = m.sensitivities(sens)
        tables[m.name] = ContributionTable(
            m.name, keys, s, sigmas, param_covariance=param_covariance)
    t_end = time.perf_counter()

    return MismatchAnalysisResult(
        compiled=compiled, pss=pss_result, sens=sens, measures=measures,
        nominal=nominal, tables=tables,
        runtime_seconds=t_end - t_start,
        runtime_breakdown={"pss": 0.0,
                           "lptv": t_lptv - t_start,
                           "measures": t_end - t_lptv})


def _positional_shim(func_name: str, order: tuple[str, ...],
                     args: tuple, kwargs: dict) -> dict:
    """Map legacy positional arguments (beyond circuit + outputs) onto
    their keyword names, with a :class:`DeprecationWarning`.

    The public entry points froze their keyword surface in the
    ``repro.api`` facade; positional call shapes like
    ``dc_mismatch_analysis(ckt, outs, None, cov)`` still work but warn,
    so they can be retired without breaking anyone silently.
    """
    if not args:
        return kwargs
    if len(args) > len(order):
        raise TypeError(
            f"{func_name}() takes at most {2 + len(order)} positional "
            f"arguments ({2 + len(args)} given)")
    import warnings
    names = order[:len(args)]
    warnings.warn(
        f"passing {', '.join(names)} positionally to {func_name}() is "
        "deprecated; pass them as keywords",
        DeprecationWarning, stacklevel=3)
    merged = dict(kwargs)
    for name, value in zip(names, args):
        if name in merged:
            raise TypeError(
                f"{func_name}() got multiple values for argument "
                f"'{name}'")
        merged[name] = value
    return merged


def _as_request(kind: str, circuit, requestable: bool, **kwargs):
    """Build the :class:`~repro.service.requests.AnalysisRequest` form
    of a free-function call, or ``None`` when the call can only run on
    the in-process flow path (live engine objects - a custom state, a
    precomputed orbit, a backend instance, an unregistered measure, an
    already-compiled circuit - have no serializable identity)."""
    if not requestable:
        return None
    if not isinstance(circuit, Circuit):
        return None
    from ..service.requests import AnalysisRequest
    try:
        return AnalysisRequest.build(kind, circuit, **kwargs)
    except TypeError:
        # outside the closed serialization registry (e.g. a custom
        # Measure): in-process only
        return None


#: Historical positional order of :func:`transient_mismatch_analysis`,
#: used by the deprecation shim that maps stray positionals to keywords.
_TRANSIENT_ORDER = ("period", "oscillator_anchor", "t_settle",
                    "dt_settle", "state", "pss_options", "injections",
                    "param_covariance", "precomputed_pss", "backend",
                    "variations")

_DC_ORDER = ("state", "param_covariance", "backend", "variations")


def transient_mismatch_analysis(circuit, measures: list[Measure],
                                *args, **kwargs):
    """Run the paper's sensitivity-based transient mismatch analysis.

    Keyword-only beyond *circuit* and *measures* (legacy positional
    call shapes still work with a :class:`DeprecationWarning`); see
    :func:`_transient_mismatch_analysis` for the full contract.
    """
    kwargs = _positional_shim("transient_mismatch_analysis",
                              _TRANSIENT_ORDER, args, kwargs)
    return _transient_mismatch_analysis(circuit, measures, **kwargs)


def _transient_mismatch_analysis(
        circuit, measures: list[Measure], *,
        period: float | None = None,
        oscillator_anchor: str | None = None,
        t_settle: float | None = None,
        dt_settle: float | None = None,
        state: ParamState | None = None,
        pss_options: PssOptions | None = None,
        injections: list[Injection] | None = None,
        param_covariance: np.ndarray | None = None,
        precomputed_pss: PssResult | None = None,
        backend: str | None = None,
        variations=None,
        retry=None,
        n_workers: int | None = None,
) -> MismatchAnalysisResult:
    """Run the paper's sensitivity-based transient mismatch analysis.

    Exactly one of *period* (driven circuit) or *oscillator_anchor*
    (autonomous circuit, with *t_settle*/*dt_settle* for the startup
    transient) must be given, unless *precomputed_pss* is supplied.

    This is a thin wrapper over the process-default
    :class:`~repro.service.session.AnalysisSession`
    (:func:`repro.service.default_session`): serializable calls are
    expressed as an :class:`~repro.service.requests.AnalysisRequest`
    and executed through :meth:`AnalysisSession.run`, so the in-process
    path and a future daemon submitting the identical request run
    byte-for-byte the same pipeline - and repeats of an identical call
    hit the session's result memo.  Calls carrying live engine objects
    (a custom *state*, explicit *injections*, a *precomputed_pss*, a
    backend instance, an unregistered measure, or an already-compiled
    circuit) run the same session flow directly.  Either way the
    compile and the PSS orbit go through the session's
    content-addressed caches, and results are bit-identical to a cold,
    cache-free run.  Use a dedicated :class:`AnalysisSession` (or its
    :meth:`~repro.service.session.AnalysisSession.transient_mismatch`)
    for isolated cache lifetimes, request memoization and job fan-out.

    Parameters
    ----------
    circuit:
        A :class:`Circuit` or :class:`CompiledCircuit`.
    measures:
        Performance metrics to characterise.
    injections:
        Restrict/override the mismatch sources (default: every
        declaration in the circuit).
    param_covariance:
        Full mismatch covariance matrix for correlated mismatch
        (paper Eq. 6); defaults to independent parameters.
    variations:
        Declarative :class:`~repro.variation.VariationSpec` as an
        alternative to *param_covariance* (mutually exclusive);
        lowered onto the circuit's declaration order, bit-identical
        to the equivalent hand-built matrix.
    backend:
        Linear-solver backend name or instance (``"dense"``,
        ``"cached"``, ``"sparse"``; see :mod:`repro.linalg`); default
        auto-selects by circuit size.
    retry, n_workers:
        Accepted for keyword uniformity with the Monte-Carlo entry
        points; a single deterministic solve has nothing to retry or
        fan out, so they are checked for shape and otherwise ignored.

    Returns
    -------
    MismatchAnalysisResult
    """
    from ..service.session import default_session
    session = default_session()
    request = _as_request(
        "transient_mismatch", circuit,
        requestable=(state is None and injections is None
                     and precomputed_pss is None
                     and (backend is None or isinstance(backend, str))),
        measures=measures, period=period,
        oscillator_anchor=oscillator_anchor, t_settle=t_settle,
        dt_settle=dt_settle, pss_options=pss_options,
        param_covariance=param_covariance, variations=variations,
        retry=retry, n_workers=n_workers)
    if request is not None:
        return session.run(request).detail
    if variations is not None:
        if param_covariance is not None:
            raise ValueError(
                "give param_covariance or variations, not both")
        param_covariance = variations.covariance(circuit)
    return session.transient_mismatch(
        circuit, measures, period=period,
        oscillator_anchor=oscillator_anchor, t_settle=t_settle,
        dt_settle=dt_settle, state=state, pss_options=pss_options,
        injections=injections, param_covariance=param_covariance,
        precomputed_pss=precomputed_pss, backend=backend)


def run_dc_mismatch(compiled: CompiledCircuit,
                    outputs: dict[str, str | tuple[str, str]],
                    state: ParamState | None = None,
                    param_covariance: np.ndarray | None = None,
                    ) -> MismatchAnalysisResult:
    """Engine of the DC mismatch analysis, given the compiled circuit.

    One adjoint solve per output: with ``G dx = -di/dp``, the output
    sensitivity is ``S_i = -(G^-T c)^T (di/dp)_i`` (the generalised
    adjoint network of Director & Rohrer, [25] in the paper).  ``G`` is
    factored once through the circuit's linear-solver backend and the
    factorization is reused (transposed) across all outputs.
    """
    state = state or compiled.nominal
    t_start = time.perf_counter()

    dc = dc_operating_point(compiled, state)
    x_pad = compiled.pad(dc.x)
    _, g_pad, f_pad = compiled.buffers(())
    compiled.assemble(state, x_pad, 0.0, g_pad, f_pad)
    n = compiled.n
    g = g_pad[:n, :n]

    injections = compiled.mismatch_injections(state, dc.x[None, :])
    if not injections:
        raise AnalysisError("circuit declares no mismatch parameters")
    di = np.stack([inj.di_dp[0] for inj in injections], axis=-1)  # (n, m)
    sigmas = np.array([inj.sigma for inj in injections])
    keys = [inj.key for inj in injections]

    nominal: dict[str, float] = {}
    tables: dict[str, ContributionTable] = {}
    measures: list[Measure] = []
    g_fact = compiled.backend.factor(g)
    from .measures import DcLevel
    for name, spec in outputs.items():
        pos, neg = (spec if isinstance(spec, tuple) else (spec, None))
        c_vec = np.zeros(n)
        c_vec[compiled.node_index[pos]] = 1.0
        if neg is not None:
            c_vec[compiled.node_index[neg]] -= 1.0
        lam = g_fact.solve(c_vec, trans=True)
        s = -(lam @ di)
        nominal[name] = float(c_vec @ dc.x)
        tables[name] = ContributionTable(name, keys, s, sigmas,
                                         param_covariance=param_covariance)
        measures.append(DcLevel(name, pos, neg))

    t_end = time.perf_counter()
    return MismatchAnalysisResult(
        compiled=compiled, pss=None, sens=None, measures=measures,
        nominal=nominal, tables=tables, runtime_seconds=t_end - t_start,
        runtime_breakdown={"dc": t_end - t_start})


def dc_mismatch_analysis(circuit,
                         outputs: dict[str, str | tuple[str, str]],
                         *args, **kwargs):
    """DC mismatch analysis; keyword-only beyond *circuit* and
    *outputs* (legacy positional call shapes still work with a
    :class:`DeprecationWarning`).  See :func:`_dc_mismatch_analysis`
    for the full contract."""
    kwargs = _positional_shim("dc_mismatch_analysis", _DC_ORDER,
                              args, kwargs)
    return _dc_mismatch_analysis(circuit, outputs, **kwargs)


def _dc_mismatch_analysis(circuit,
                          outputs: dict[str, str | tuple[str, str]], *,
                          state: ParamState | None = None,
                          param_covariance: np.ndarray | None = None,
                          backend: str | None = None,
                          variations=None,
                          retry=None,
                          n_workers: int | None = None,
                          ) -> MismatchAnalysisResult:
    """DC mismatch (dcmatch / [8]) analysis - the method the paper extends.

    A thin wrapper over the process-default
    :class:`~repro.service.session.AnalysisSession`: serializable calls
    run as an :class:`~repro.service.requests.AnalysisRequest` through
    :meth:`AnalysisSession.run` (memoized, daemon-identical), calls
    carrying live objects run the session flow directly; the compile
    goes through the session's content-addressed cache either way
    (results are bit-identical to a cache-free run), and the adjoint
    engine :func:`run_dc_mismatch` does the rest.

    Parameters
    ----------
    outputs:
        Metric name -> node (or ``(pos, neg)`` pair) whose DC value's
        variation is wanted.
    variations:
        Declarative :class:`~repro.variation.VariationSpec` as an
        alternative to *param_covariance* (mutually exclusive).
    retry, n_workers:
        Accepted for keyword uniformity with the Monte-Carlo entry
        points; checked for shape and otherwise ignored.
    """
    from ..service.session import default_session
    session = default_session()
    request = _as_request(
        "dc_mismatch", circuit,
        requestable=(state is None
                     and (backend is None or isinstance(backend, str))),
        outputs=outputs, param_covariance=param_covariance,
        variations=variations, retry=retry, n_workers=n_workers)
    if request is not None:
        return session.run(request).detail
    if variations is not None:
        if param_covariance is not None:
            raise ValueError(
                "give param_covariance or variations, not both")
        param_covariance = variations.covariance(circuit)
    return session.dc_mismatch(
        circuit, outputs, state=state,
        param_covariance=param_covariance, backend=backend)
