"""Monte-Carlo mismatch analysis - the baseline of the paper's Table II.

Mismatch parameters are sampled from their Gaussian distributions, the
circuit is re-simulated per sample, and statistics are collected from the
measured performances.  Two implementation notes:

* **Batched lanes.** All samples integrate simultaneously as one stacked
  system (see :mod:`repro.analysis.mna`), so the baseline is as fast as
  dense ``numpy`` allows rather than being handicapped by Python-level
  looping.  Reported speedups of the sensitivity method are therefore
  conservative relative to the paper's (which compared against serial
  SPICE runs).  Parameter states are sparse-native (O(nnz) per chunk
  to construct); the dense stacks a batched solve needs are densified
  from the sparse template exactly once per chunk through the
  :meth:`~repro.analysis.mna.ParamState.to_dense` escape hatch, and
  die with the chunk.
* **Identical measurement path.** The same :class:`~repro.core.measures`
  objects extract metrics from MC waveforms and from the PSS orbit, so
  method-vs-MC deltas reflect the linear-model error only.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..analysis.mna import CompiledCircuit
from ..analysis.transient import TransientOptions, transient
from ..circuit.elements import ParamKey
from ..errors import MeasurementError
from ..stats import SampleStats, describe
from ..waveform import WaveformSet
from .analysis import _as_compiled
from .measures import Measure


@dataclass
class MonteCarloResult:
    """Samples and summary statistics of one MC run."""

    n: int
    samples: dict[str, np.ndarray]
    stats: dict[str, SampleStats]
    deltas: dict[ParamKey, np.ndarray]
    runtime_seconds: float = 0.0
    #: Number of *distinct* lanes with at least one failed measure
    #: (per-metric failure counts live in ``failed_metrics``).  Under a
    #: retry policy this includes every lane of a degraded shard.
    n_failed: int = 0
    failed_metrics: dict[str, int] = field(default_factory=dict)
    #: Structured :class:`~repro.errors.FailureRecord` values for spans
    #: a supervised run degraded (empty on clean/unsupervised runs).
    failures: list = field(default_factory=list)

    def sigma(self, metric: str) -> float:
        return self.stats[metric].std

    def mean(self, metric: str) -> float:
        return self.stats[metric].mean

    def correlation(self, metric_a: str, metric_b: str) -> float:
        a, b = self.samples[metric_a], self.samples[metric_b]
        ok = np.isfinite(a) & np.isfinite(b)
        return float(np.corrcoef(a[ok], b[ok])[0, 1])

    def report(self) -> str:
        lines = [f"Monte-Carlo, n = {self.n} "
                 f"({self.runtime_seconds:.2f} s)"]
        for name, st in self.stats.items():
            lines.append(
                f"  {name}: mean {st.mean:.6g}  sigma {st.std:.6g} "
                f"(95% CI [{st.std_ci_low:.6g}, {st.std_ci_high:.6g}])  "
                f"skew {st.skewness:+.3f}")
        return "\n".join(lines)


def sample_mismatch(compiled: CompiledCircuit, n: int,
                    rng: np.random.Generator,
                    sigma_scale: float = 1.0,
                    keys: list[ParamKey] | None = None,
                    param_covariance: np.ndarray | None = None
                    ) -> dict[ParamKey, np.ndarray]:
    """Draw *n* joint samples of the circuit's mismatch parameters.

    With *param_covariance* given (paper Eq. 6: ``C = A A^T``), samples
    are drawn from the full joint Gaussian; otherwise parameters are
    independent with their declared sigmas.  *sigma_scale* scales all
    deviations (the paper's Fig. 11 sweep).
    """
    decls = compiled.circuit.mismatch_decls()
    if keys is not None:
        by_key = {d.key: d for d in decls}
        decls = [by_key[k] for k in keys]
    m = len(decls)
    if m == 0:
        raise MeasurementError("circuit declares no mismatch parameters")
    if param_covariance is not None:
        cov = np.asarray(param_covariance, dtype=float)
        if cov.shape != (m, m):
            raise ValueError("covariance shape does not match parameters")
        # eigen-factorisation instead of Cholesky: rank-deficient
        # covariances (C = A A^T with fewer sources than parameters,
        # paper Eq. 6) are perfectly legitimate here
        eigvals, eigvecs = np.linalg.eigh(cov)
        eigvals = np.clip(eigvals, 0.0, None)
        factor = eigvecs * np.sqrt(eigvals)
        z = rng.standard_normal((n, m))
        draws = sigma_scale * (z @ factor.T)
    else:
        sig = np.array([d.sigma for d in decls])
        draws = sigma_scale * sig * rng.standard_normal((n, m))
    return {d.key: draws[:, j] for j, d in enumerate(decls)}


def _resolve_variations(compiled, param_covariance, variations):
    """Lower a declarative :class:`~repro.variation.VariationSpec`
    (live instance or tagged payload) onto the compiled circuit's
    declaration order.  The spec is lowered *once* here, so the shard
    planner and every worker see the identical covariance matrix and
    the bit-identical-merge contract is untouched."""
    if variations is None:
        return param_covariance
    if param_covariance is not None:
        raise ValueError("give param_covariance or variations, not both")
    if isinstance(variations, dict):
        from ..service.serialize import variation_spec
        variations = variation_spec(variations)
    return variations.covariance(compiled)


def measurement_window_mask(t: np.ndarray, window: tuple[float, float],
                            dt: float | None = None) -> np.ndarray:
    """Samples of grid *t* inside *window*, with half-a-step tolerance.

    The tolerance must scale with the grid: a fixed absolute epsilon
    (the old ``1e-15``) silently dropped grid-edge samples as soon as
    ``t_stop`` reached the seconds range, because ``k * dt`` accumulates
    rounding of order ``t * eps`` - far above any fixed epsilon while
    always far below half a step.

    And it must scale with the *local* grid: adaptive transients return
    non-uniform time axes, where a single global ``dt / 2`` (the nominal
    step) is wrong in both directions - orders of magnitude too wide
    where the controller refined (selecting samples far outside the
    window) and too narrow where it coarsened (dropping the edge sample
    again).  Each sample therefore gets half its *smaller adjacent
    spacing* as tolerance, which reduces exactly to ``dt / 2`` on a
    uniform grid.  Pass *dt* to force the uniform-grid scalar tolerance
    (legacy call sites on known-uniform grids).
    """
    t = np.asarray(t, dtype=float)
    if dt is not None:
        tol: "float | np.ndarray" = 0.5 * dt
    elif t.size >= 2:
        gaps = np.diff(t)
        tol = 0.5 * np.minimum(np.concatenate(([gaps[0]], gaps)),
                               np.concatenate((gaps, [gaps[-1]])))
    else:
        tol = 0.0
    return (t >= window[0] - tol) & (t <= window[1] + tol)


def measure_lanes(t: np.ndarray, signals: dict[str, np.ndarray],
                  measures: list[Measure],
                  out: dict[str, np.ndarray], offset: int) -> int:
    """Apply *measures* to every lane of a batched recording.

    Measurements that fail (a missing crossing because the sample pushed
    the circuit out of its operating regime, or a non-finite result from
    a lane the transient froze) record NaN.  The return value counts
    *distinct failed lanes*, not failed measures - a lane failing two
    measures is still one failed sample of the Monte-Carlo run.
    """
    n_lanes = next(iter(signals.values())).shape[1]
    failed_lanes = 0
    for b in range(n_lanes):
        ws = WaveformSet(t, {k: v[:, b] for k, v in signals.items()})
        lane_failed = False
        for meas in measures:
            try:
                val = meas.measure_waveset(ws)
            except MeasurementError:
                val = np.nan
            out[meas.name][offset + b] = val
            if not np.isfinite(val):
                lane_failed = True
        failed_lanes += lane_failed
    return failed_lanes


def _transient_chunk(circuit, measures: list[Measure],
                     options: TransientOptions, t_stop: float, dt: float,
                     window: tuple[float, float] | None,
                     deltas: dict[ParamKey, np.ndarray], n_lanes: int
                     ) -> tuple[dict[str, np.ndarray], int]:
    """Simulate and measure one chunk of Monte-Carlo lanes.

    Module-level so that :class:`~concurrent.futures.
    ProcessPoolExecutor` workers can run it; both the serial loop and
    the workers receive the already-compiled circuit (workers get it
    pickled), so every chunk runs the identical compiled object.
    Results depend only on the chunk's deltas, so a shard executed in a
    worker process is bit-for-bit identical to the same chunk executed
    serially - on the adaptive grid too: the lanes of a chunk share one
    LTE-controlled step sequence, and that sequence is a pure function
    of the chunk's deltas.
    """
    compiled = _as_compiled(circuit)
    state = compiled.make_state(deltas=deltas)
    res = transient(compiled, t_stop=t_stop, dt=dt, state=state,
                    options=options)
    t = res.t
    sig = res.signals
    if window is not None:
        # tolerance from the local grid spacing: correct on both the
        # uniform and the adaptive (non-uniform) time axis
        mask = measurement_window_mask(t, window)
        t = t[mask]
        sig = {k: v[mask] for k, v in sig.items()}
    vals = {m.name: np.empty(n_lanes) for m in measures}
    failures = measure_lanes(t, sig, measures, vals, 0)
    return vals, failures


def monte_carlo_transient(circuit, measures: list[Measure], n: int,
                          t_stop: float, dt: float,
                          window: tuple[float, float] | None = None,
                          seed: int = 0, sigma_scale: float = 1.0,
                          param_covariance: np.ndarray | None = None,
                          chunk_size: int = 250,
                          method: str = "trap",
                          extra_record: list[str] | None = None,
                          backend: str | None = None,
                          n_workers: int | None = None,
                          adaptive: bool = False,
                          rtol: float = 1e-3, atol: float = 1e-6,
                          dt_min: float | None = None,
                          dt_max: float | None = None,
                          retry=None,
                          variations=None) -> MonteCarloResult:
    """Monte-Carlo over batched transients.

    Lanes whose Newton iteration diverges or whose Jacobian goes
    singular are isolated and frozen (NaN) instead of aborting the run;
    they are reported through ``n_failed`` / ``failed_metrics``.

    Parameters
    ----------
    t_stop, dt:
        Transient span and fixed step for every lane (a ceiling on the
        initial step when *adaptive* is set).
    window:
        Measurement window ``(t0, t1)``; metrics are extracted from this
        slice only (defaults to the full span).  Use the last period of a
        settled response, mirroring how the PSS measures.  On the
        adaptive grid the stepper lands exactly on both window edges.
    chunk_size:
        Lanes per stacked solve - bounds peak memory and sets the shard
        granularity for parallel runs.
    backend:
        Linear-solver backend override (see :mod:`repro.linalg`).
    n_workers:
        Fan the (independent) chunks out over this many worker
        *processes*.  All deltas are drawn up front from the single
        seeded generator and sliced per chunk, and results are merged
        in chunk order, so ``samples``/``n_failed`` are bit-for-bit
        identical to the serial run at the same *chunk_size* - with and
        without *adaptive* (each chunk's step sequence depends only on
        that chunk's lanes).  ``None``/1 keeps the serial in-process
        loop.
    adaptive, rtol, atol, dt_min, dt_max:
        LTE-controlled adaptive stepping per chunk (see
        :class:`~repro.analysis.transient.TransientOptions`).  The
        lanes of one chunk share a single step sequence (the controller
        takes the worst lane), so a chunk remains one stacked solve.
    retry:
        A :class:`~repro.service.jobs.RetryPolicy` putting every shard
        under supervision: retryable failures retry with backoff
        (plus deadlines and pool-crash recovery on parallel runs), and
        a shard that exhausts its attempts merges NaN-frozen with its
        lanes counted in ``n_failed`` and a
        :class:`~repro.errors.FailureRecord` appended to ``failures``,
        instead of aborting the run.  Unaffected shards stay
        bit-identical to the unsupervised run.
    variations:
        Declarative :class:`~repro.variation.VariationSpec` as an
        alternative to *param_covariance* (mutually exclusive); lowered
        onto the circuit's declaration order up front, so samples are
        bit-identical to the equivalent hand-built matrix.

    Returns
    -------
    MonteCarloResult
    """
    from ..service.shards import (mc_transient_shards,
                                  merge_shard_results, run_shard)
    compiled = _as_compiled(circuit, backend=backend)
    param_covariance = _resolve_variations(compiled, param_covariance,
                                           variations)
    rng = np.random.default_rng(seed)
    # the full joint draw, kept on the result; each shard redraws the
    # identical set from the seed and slices its own span
    all_deltas = sample_mismatch(compiled, n, rng, sigma_scale,
                                 param_covariance=param_covariance)
    t_begin = time.perf_counter()

    specs = mc_transient_shards(
        compiled, measures, n, t_stop, dt, chunk_size=chunk_size,
        window=window, seed=seed, sigma_scale=sigma_scale,
        param_covariance=param_covariance, method=method,
        extra_record=extra_record, backend=backend, adaptive=adaptive,
        rtol=rtol, atol=atol, dt_min=dt_min, dt_max=dt_max)

    results = _run_specs(specs, compiled, n_workers, retry, run_shard)
    merged = merge_shard_results(results)

    stats = {}
    failed_metrics = {}
    for name, vals in merged.samples.items():
        good = vals[np.isfinite(vals)]
        failed_metrics[name] = int(vals.size - good.size)
        if good.size < 2:
            raise MeasurementError(
                f"Monte-Carlo metric '{name}' failed on almost all lanes")
        stats[name] = describe(good)

    return MonteCarloResult(
        n=n, samples=merged.samples, stats=stats, deltas=all_deltas,
        runtime_seconds=time.perf_counter() - t_begin,
        n_failed=merged.n_failed, failed_metrics=failed_metrics,
        failures=list(merged.failures))


def _run_specs(specs, compiled, n_workers: int | None, retry,
               run_shard) -> list:
    """Execute shard *specs* - serial or pooled, supervised when a
    retry policy is given - returning results in spec (= merge) order."""
    parallel = n_workers is not None and n_workers > 1 and len(specs) > 1
    if retry is not None:
        from ..service.jobs import JobQueue, run_supervised_shard
        if parallel:
            with JobQueue(n_workers=n_workers, retry=retry) as queue:
                jobs = [queue.submit_shard(spec) for spec in specs]
                return [job.result() for job in jobs]
        return [run_supervised_shard(spec, retry, compiled=compiled)
                for spec in specs]
    if parallel:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [pool.submit(run_shard, spec, compiled)
                       for spec in specs]
            # merge in submission (= serial) order
            return [fut.result() for fut in futures]
    return [run_shard(spec, compiled) for spec in specs]


def _dc_chunk(circuit, outputs: dict[str, "str | tuple[str, str]"],
              deltas: dict[ParamKey, np.ndarray]
              ) -> dict[str, np.ndarray]:
    """One batched DC operating-point chunk (worker-safe)."""
    from ..analysis.dcop import dc_operating_point
    compiled = _as_compiled(circuit)
    state = compiled.make_state(deltas=deltas)
    dc = dc_operating_point(compiled, state)
    samples = {}
    for name, spec in outputs.items():
        pos, neg = (spec if isinstance(spec, tuple) else (spec, "0"))
        samples[name] = np.asarray(dc.voltage(pos, neg))
    return samples


def monte_carlo_dc(circuit, outputs: dict[str, str | tuple[str, str]],
                   n: int, seed: int = 0, sigma_scale: float = 1.0,
                   param_covariance: np.ndarray | None = None,
                   backend: str | None = None,
                   chunk_size: int | None = None,
                   n_workers: int | None = None,
                   retry=None, variations=None) -> MonteCarloResult:
    """Monte-Carlo over batched DC operating points (dcmatch baseline).

    *chunk_size* splits the batch into independent stacked solves
    (default: one batch with all *n* lanes, the historical behaviour);
    *n_workers* fans the chunks out over worker processes.  Because the
    batched Newton loop iterates until the *worst* lane of a chunk
    converges, results are bit-for-bit reproducible only across runs
    with the same chunk boundaries - so when ``n_workers > 1`` and no
    *chunk_size* is given, chunking defaults to an even
    ``ceil(n / n_workers)`` split, and a serial run with that same
    *chunk_size* reproduces the parallel samples exactly.

    *retry* supervises the shards exactly as in
    :func:`monte_carlo_transient`: degraded spans merge as NaN, are
    counted in ``n_failed`` and reported through ``failures``, and the
    statistics are taken over the surviving finite lanes.  *variations*
    (a :class:`~repro.variation.VariationSpec`, mutually exclusive with
    *param_covariance*) lowers to the equivalent covariance up front.
    """
    from ..service.shards import (mc_dc_shards, merge_shard_results,
                                  run_shard)
    compiled = _as_compiled(circuit, backend=backend)
    param_covariance = _resolve_variations(compiled, param_covariance,
                                           variations)
    rng = np.random.default_rng(seed)
    deltas = sample_mismatch(compiled, n, rng, sigma_scale,
                             param_covariance=param_covariance)
    t_begin = time.perf_counter()
    parallel = n_workers is not None and n_workers > 1
    if chunk_size is None:
        chunk_size = -(-n // n_workers) if parallel else n

    specs = mc_dc_shards(compiled, outputs, n, chunk_size, seed=seed,
                         sigma_scale=sigma_scale,
                         param_covariance=param_covariance,
                         backend=backend)
    results = _run_specs(specs, compiled, n_workers, retry, run_shard)
    merged = merge_shard_results(results)
    stats = {}
    failed_metrics = {}
    for name, vals in merged.samples.items():
        good = vals[np.isfinite(vals)]
        failed_metrics[name] = int(vals.size - good.size)
        if good.size < 2:
            raise MeasurementError(
                f"Monte-Carlo metric '{name}' failed on almost all lanes")
        stats[name] = describe(good)
    return MonteCarloResult(
        n=n, samples=merged.samples, stats=stats, deltas=deltas,
        runtime_seconds=time.perf_counter() - t_begin,
        n_failed=merged.n_failed, failed_metrics=failed_metrics,
        failures=list(merged.failures))
