"""The paper's contribution: sensitivity-based transient mismatch analysis
via pseudo-noise + LPTV, with contributions, correlations, design
sensitivities and the Gaussian-mixture extension."""

from .analysis import (MismatchAnalysisResult, dc_mismatch_analysis,
                       transient_mismatch_analysis)
from .contributions import (ContributionRow, ContributionTable, correlation,
                            correlated_covariance_from_mixing, covariance,
                            difference_variance,
                            linear_combination_variance)
from .design_sensitivity import (WidthSensitivity, sigma_after_resize,
                                 width_sensitivities,
                                 width_sensitivity_report)
from .gaussian_mixture import (MixtureComponent, ProjectedMixture,
                               project_mixture,
                               project_mixture_with_background,
                               split_gaussian)
from .interpret import (delay_variance_from_psd,
                        frequency_variance_from_psd,
                        phase_variance_from_psd, psd_from_delay_variance,
                        psd_from_frequency_variance, statistical_waveform,
                        variance_from_baseband_psd)
from .measures import DcLevel, EdgeDelay, Frequency, Measure
from .montecarlo import (MonteCarloResult, monte_carlo_dc,
                         monte_carlo_transient, sample_mismatch)
from .pseudo_noise import (PseudoNoisePsd, folding_safety_ratio,
                           injection_table, pseudo_noise_sources)

__all__ = [
    "transient_mismatch_analysis", "dc_mismatch_analysis",
    "MismatchAnalysisResult",
    "ContributionTable", "ContributionRow", "covariance", "correlation",
    "difference_variance", "linear_combination_variance",
    "correlated_covariance_from_mixing",
    "Measure", "DcLevel", "EdgeDelay", "Frequency",
    "monte_carlo_transient", "monte_carlo_dc", "sample_mismatch",
    "MonteCarloResult",
    "statistical_waveform", "variance_from_baseband_psd",
    "phase_variance_from_psd", "delay_variance_from_psd",
    "frequency_variance_from_psd", "psd_from_delay_variance",
    "psd_from_frequency_variance",
    "width_sensitivities", "width_sensitivity_report", "WidthSensitivity",
    "sigma_after_resize",
    "split_gaussian", "project_mixture", "project_mixture_with_background",
    "MixtureComponent", "ProjectedMixture",
    "PseudoNoisePsd", "pseudo_noise_sources", "injection_table",
    "folding_safety_ratio",
]
