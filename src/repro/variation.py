"""Declarative variation specifications (domain layer).

A :class:`VariationSpec` describes *which* circuit parameters vary and
*how* - component/parameter/distribution triples plus correlation
groups - as a plain value that serializes, fingerprints and crosses
process boundaries.  It replaces hand-built ``param_covariance`` arrays
at every request surface (:class:`~repro.service.requests.
AnalysisRequest` constructors, :class:`~repro.service.shards.
ShardSpec`, the Monte-Carlo engines) while lowering onto exactly the
machinery that already exists:

* :meth:`VariationSpec.lower` produces the full mismatch covariance
  matrix (paper Eq. 6) in :meth:`~repro.circuit.netlist.Circuit.
  mismatch_decls` order - bit-identical to the equivalent hand-built
  array, so samples and sensitivity projections are unchanged;
* :meth:`VariationSpec.mixture` lowers a non-Gaussian marginal onto the
  :mod:`~repro.core.gaussian_mixture` machinery (paper Section VIII)
  for the dominant-parameter extension.

Non-Gaussian distributions (``uniform``, ``lognormal``) are
moment-matched in the covariance lowering - the linearized method only
consumes second moments, and the Gaussian Monte-Carlo sampler keeps its
bit-identical shard contract.  Distribution *shape* enters through the
mixture lowering, where it belongs.

This module is domain-level: it may import :mod:`repro.circuit` and
:mod:`repro.stats` but never :mod:`repro.service` (CI enforces it via
``tools/check_import_layering.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from .circuit.elements import MismatchDecl, ParamKey
from .circuit.netlist import content_digest
from .errors import AnalysisError

#: Distribution kinds a :class:`ParameterVariation` may declare
#: (the ``DistributionType`` shape of SPICE tolerance frontends).
DISTRIBUTIONS = ("gaussian", "uniform", "lognormal")

#: ``sqrt(3)``: half-width of the moment-matched uniform distribution
#: in units of its standard deviation.
_SQRT3 = math.sqrt(3.0)


@dataclass(frozen=True)
class ParameterVariation:
    """How one circuit parameter varies.

    Attributes
    ----------
    component, parameter:
        The :class:`~repro.circuit.elements.MismatchDecl` key this
        variation applies to (``("M1", "vt0")``, ``("R1", "r")``, ...).
        The parameter must be *declared* by the circuit (a nonzero
        element sigma) - variations cannot conjure injection machinery
        for parameters the compiled circuit does not perturb.
    distribution:
        ``"gaussian"`` (default), ``"uniform"`` or ``"lognormal"``.
    sigma:
        Absolute standard deviation override, in the parameter's own
        unit.  ``None`` (default) keeps the circuit's declared sigma.
    scale:
        Multiplier on the (declared or overridden) sigma - the per-
        parameter form of the spec-wide ``default_scale``.
    half_width:
        Uniform distributions only: the absolute ``+/- half_width``
        support bound.  ``None`` moment-matches the support to the
        effective sigma (``half_width = sigma * sqrt(3)``).
    shape:
        Lognormal distributions only: the log-space sigma controlling
        the skew of the normalized shape (the output std is always the
        effective sigma; larger *shape* means heavier right tail).
    group:
        Optional :class:`CorrelationGroup` name; members of one group
        are pairwise correlated with the group's ``rho``.
    """

    component: str
    parameter: str
    distribution: str = "gaussian"
    sigma: float | None = None
    scale: float = 1.0
    half_width: float | None = None
    shape: float = 0.5
    group: str | None = None

    def __post_init__(self):
        if self.distribution not in DISTRIBUTIONS:
            raise AnalysisError(
                f"unknown distribution '{self.distribution}' for "
                f"{self.component}.{self.parameter}; expected one of "
                f"{DISTRIBUTIONS}")
        if self.sigma is not None and self.sigma <= 0.0:
            raise AnalysisError(
                f"{self.component}.{self.parameter}: sigma must be "
                f"positive, got {self.sigma}")
        if self.half_width is not None:
            if self.distribution != "uniform":
                raise AnalysisError(
                    f"{self.component}.{self.parameter}: half_width "
                    f"only applies to uniform distributions")
            if self.half_width <= 0.0:
                raise AnalysisError(
                    f"{self.component}.{self.parameter}: half_width "
                    f"must be positive, got {self.half_width}")
        if self.shape <= 0.0:
            raise AnalysisError(
                f"{self.component}.{self.parameter}: shape must be "
                f"positive, got {self.shape}")
        if self.scale <= 0.0:
            raise AnalysisError(
                f"{self.component}.{self.parameter}: scale must be "
                f"positive, got {self.scale}")

    @property
    def key(self) -> ParamKey:
        return (self.component, self.parameter)

    def std(self, declared: float | None) -> float:
        """Moment-matched standard deviation of this variation.

        *declared* is the circuit's declared sigma for the parameter,
        used when no explicit override is given.  Uniform variations
        with an explicit ``half_width`` derive it as
        ``half_width / sqrt(3)``; every other case is
        ``sigma * scale``.
        """
        if self.distribution == "uniform" and self.half_width is not None:
            return self.half_width / _SQRT3 * self.scale
        base = self.sigma if self.sigma is not None else declared
        if base is None:
            raise AnalysisError(
                f"{self.component}.{self.parameter}: no sigma given "
                f"and none declared by the circuit")
        return base * self.scale


@dataclass(frozen=True)
class CorrelationGroup:
    """Pairwise correlation among the variations naming this group.

    ``rho`` applies between every distinct pair of members (a
    common-process or common-centroid matching group).  For ``k``
    members the lowered covariance is positive semi-definite when
    ``rho >= -1 / (k - 1)``; the Monte-Carlo sampler additionally
    clips negative eigenvalues, exactly as for hand-built matrices.
    """

    name: str
    rho: float

    def __post_init__(self):
        if not -1.0 <= self.rho <= 1.0:
            raise AnalysisError(
                f"correlation group '{self.name}': rho must be in "
                f"[-1, 1], got {self.rho}")


@dataclass(frozen=True)
class VariationSpec:
    """The full declarative variation description of one workload.

    The spec is canonicalized on construction - variations sorted by
    ``(component, parameter)``, groups by name - so two specs declaring
    the same content in any order are equal, serialize identically and
    share a :meth:`fingerprint`.
    """

    variations: tuple = ()
    groups: tuple = ()
    #: Spec-wide sigma multiplier (the paper's Fig. 11 mismatch-scale
    #: sweep as a declarative knob); applies to *every* declared
    #: mismatch parameter, covered by a variation or not.
    default_scale: float = 1.0

    def __post_init__(self):
        object.__setattr__(
            self, "variations",
            tuple(sorted(self.variations, key=lambda v: v.key)))
        object.__setattr__(
            self, "groups",
            tuple(sorted(self.groups, key=lambda g: g.name)))
        if self.default_scale <= 0.0:
            raise AnalysisError(
                f"default_scale must be positive, got "
                f"{self.default_scale}")
        seen: set[ParamKey] = set()
        for v in self.variations:
            if v.key in seen:
                raise AnalysisError(
                    f"duplicate variation for {v.component}."
                    f"{v.parameter}")
            seen.add(v.key)
        names = {g.name for g in self.groups}
        if len(names) != len(self.groups):
            raise AnalysisError("duplicate correlation group name")
        for v in self.variations:
            if v.group is not None and v.group not in names:
                raise AnalysisError(
                    f"{v.component}.{v.parameter} names unknown "
                    f"correlation group '{v.group}'; defined: "
                    f"{sorted(names) or '(none)'}")

    # -- identity ------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the canonical spec (order-independent by
        construction)."""
        return content_digest("variation-spec-v1", self)

    # -- lookup --------------------------------------------------------
    def variation_for(self, key: ParamKey) -> ParameterVariation | None:
        for v in self.variations:
            if v.key == key:
                return v
        return None

    # -- lowering ------------------------------------------------------
    def stds(self, decls: list[MismatchDecl]) -> np.ndarray:
        """Per-parameter standard deviations in *decls* order.

        Parameters covered by a variation use its moment-matched
        :meth:`~ParameterVariation.std`; uncovered declarations keep
        their declared sigma.  Everything is multiplied by
        ``default_scale``.  A variation naming a parameter the circuit
        does not declare is an error - it could silently change
        nothing.
        """
        by_key = {d.key: d.sigma for d in decls}
        for v in self.variations:
            if v.key not in by_key:
                raise AnalysisError(
                    f"variation targets undeclared parameter "
                    f"{v.component}.{v.parameter}; declared: "
                    f"{sorted(by_key) or '(none)'}")
        out = np.empty(len(decls))
        for i, d in enumerate(decls):
            v = self.variation_for(d.key)
            std = v.std(d.sigma) if v is not None else d.sigma
            out[i] = std * self.default_scale
        return out

    def lower(self, decls: list[MismatchDecl]) -> np.ndarray:
        """The full mismatch covariance matrix in *decls* order.

        Diagonal entries are the squared :meth:`stds`; every distinct
        pair of variations sharing a correlation group contributes
        ``rho * std_i * std_j`` off-diagonal.  This is bit-identical to
        the hand-built array using the same formula, so lowering a spec
        changes no sample and no sensitivity projection.
        """
        stds = self.stds(decls)
        cov = np.diag(stds ** 2)
        if self.groups:
            index = {d.key: i for i, d in enumerate(decls)}
            rho = {g.name: g.rho for g in self.groups}
            members: dict[str, list[int]] = {}
            for v in self.variations:
                if v.group is not None:
                    members.setdefault(v.group, []).append(index[v.key])
            for name, idx in members.items():
                r = rho[name]
                for a in range(len(idx)):
                    for b in range(a + 1, len(idx)):
                        i, j = idx[a], idx[b]
                        cov[i, j] = cov[j, i] = r * stds[i] * stds[j]
        return cov

    def covariance(self, circuit) -> np.ndarray:
        """:meth:`lower` against a :class:`~repro.circuit.netlist.
        Circuit` (or anything exposing ``.circuit``, e.g. a compiled
        one)."""
        inner = getattr(circuit, "circuit", circuit)
        return self.lower(inner.mismatch_decls())

    # -- gaussian-mixture lowering (Section VIII) ----------------------
    def mixture(self, component: str, parameter: str,
                declared_sigma: float | None = None,
                n_components: int = 7, span_sigmas: float = 3.0):
        """Lower one parameter's marginal onto the gaussian-mixture
        machinery: a list of :class:`~repro.core.gaussian_mixture.
        MixtureComponent` in parameter-delta space, ready for
        :func:`~repro.core.gaussian_mixture.project_mixture`.

        * ``gaussian``: the classic :func:`~repro.core.gaussian_mixture.
          split_gaussian` split;
        * ``uniform``: equally weighted narrow components spanning the
          ``+/- half_width`` support;
        * ``lognormal``: the log-space split projected through the
          normalized ``exp`` map (zero mean, std equal to the effective
          sigma, right skew set by ``shape``).
        """
        from .core.gaussian_mixture import (MixtureComponent,
                                            project_mixture,
                                            split_gaussian)
        v = self.variation_for((component, parameter))
        if v is None:
            v = ParameterVariation(component, parameter)
        std = v.std(declared_sigma) * self.default_scale
        if v.distribution == "uniform":
            half = (v.half_width * v.scale * self.default_scale
                    if v.half_width is not None else std * _SQRT3)
            centres = np.linspace(-half, half, n_components)
            spacing = centres[1] - centres[0]
            return [MixtureComponent(1.0 / n_components, float(c),
                                     float(spacing / 2.0))
                    for c in centres]
        if v.distribution == "lognormal":
            tau = v.shape
            mean_x = math.exp(tau ** 2 / 2.0)
            std_x = math.sqrt(
                (math.exp(tau ** 2) - 1.0) * math.exp(tau ** 2))

            def local_model(g: float) -> tuple[float, float]:
                value = std * (math.exp(g) - mean_x) / std_x
                slope = std * math.exp(g) / std_x
                return value, slope

            log_split = split_gaussian(tau, n_components, span_sigmas)
            return project_mixture(local_model, log_split).components
        return split_gaussian(std, n_components, span_sigmas)

    # -- derivation ----------------------------------------------------
    def scaled(self, factor: float) -> "VariationSpec":
        """A copy with ``default_scale`` multiplied by *factor* (the
        declarative form of :meth:`~repro.circuit.technology.
        Technology.scaled` sweeps)."""
        return replace(self,
                       default_scale=self.default_scale * factor)

    # -- serialization (plain dicts; the tagged service encoding in
    # -- repro.service.serialize round-trips these classes too) --------
    def to_dict(self) -> dict:
        return {
            "variations": [
                {"component": v.component, "parameter": v.parameter,
                 "distribution": v.distribution, "sigma": v.sigma,
                 "scale": v.scale, "half_width": v.half_width,
                 "shape": v.shape, "group": v.group}
                for v in self.variations],
            "groups": [{"name": g.name, "rho": g.rho}
                       for g in self.groups],
            "default_scale": self.default_scale,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VariationSpec":
        return cls(
            variations=tuple(ParameterVariation(**v)
                             for v in data.get("variations", [])),
            groups=tuple(CorrelationGroup(**g)
                         for g in data.get("groups", [])),
            default_scale=data.get("default_scale", 1.0))


def spec_for_circuit(circuit, distribution: str = "gaussian",
                     scale: float = 1.0) -> VariationSpec:
    """A :class:`VariationSpec` covering every mismatch declaration of
    *circuit* with one *distribution*, at the declared sigmas.

    The ``gaussian``/``scale=1`` form lowers to the diagonal covariance
    the engines would use implicitly; changing *distribution* or
    *scale* is the declarative version of tolerance-class and Fig.-11
    style what-if sweeps.
    """
    inner = getattr(circuit, "circuit", circuit)
    return VariationSpec(
        variations=tuple(
            ParameterVariation(component=d.element, parameter=d.param,
                               distribution=distribution)
            for d in inner.mismatch_decls()),
        default_scale=scale)
