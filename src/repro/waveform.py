"""Waveform container and time-domain measurement helpers.

A :class:`Waveform` holds one scalar signal sampled on a strictly increasing
time grid and offers the measurements the paper's benchmarks need:
threshold-crossing times (linearly interpolated), edge-to-edge delays,
oscillation period/frequency, amplitude of the fundamental, and settling
checks.  Both the Monte-Carlo baseline and the sensitivity-based engine
funnel their raw simulator output through this module so that the two
methods measure performance identically.

The grid only has to be strictly increasing, **not uniform**: adaptive
transients (:attr:`~repro.analysis.transient.TransientOptions.adaptive`)
return the accepted step sequence as their time axis, and every
measurement here either interpolates between neighbouring samples
(crossings, :meth:`Waveform.__call__`) or integrates trapezoidally with
the true local spacing (:meth:`Waveform.mean`,
:meth:`Waveform.fundamental_amplitude`), so no measurement assumes
``t[1] - t[0]`` holds globally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

import numpy as np

from .errors import MeasurementError

EdgeKind = Literal["rise", "fall", "any"]


@dataclass(frozen=True)
class Crossing:
    """One interpolated threshold crossing.

    Attributes
    ----------
    time:
        Interpolated crossing instant [s].
    slope:
        Signal slope at the crossing [units/s]; positive for rising edges.
    index:
        Index ``i`` such that the crossing lies in ``(t[i], t[i+1]]``.
    """

    time: float
    slope: float
    index: int

    @property
    def edge(self) -> str:
        return "rise" if self.slope >= 0.0 else "fall"


class Waveform:
    """A sampled scalar signal ``v(t)``.

    Parameters
    ----------
    t:
        Strictly increasing sample times [s].
    v:
        Sample values, same length as *t*.
    name:
        Optional label used in error messages.
    """

    def __init__(self, t: np.ndarray, v: np.ndarray, name: str = ""):
        t = np.asarray(t, dtype=float)
        v = np.asarray(v, dtype=float)
        if t.ndim != 1 or v.ndim != 1 or t.shape != v.shape:
            raise ValueError("t and v must be 1-D arrays of equal length")
        if t.size < 2:
            raise ValueError("a waveform needs at least two samples")
        if np.any(np.diff(t) <= 0.0):
            raise ValueError("time axis must be strictly increasing")
        self.t = t
        self.v = v
        self.name = name

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.t.size

    def __call__(self, time: float | np.ndarray) -> float | np.ndarray:
        """Linearly interpolate the waveform at *time*."""
        return np.interp(time, self.t, self.v)

    @property
    def duration(self) -> float:
        return float(self.t[-1] - self.t[0])

    def slice(self, t_start: float, t_stop: float) -> "Waveform":
        """Return the sub-waveform with ``t_start <= t <= t_stop``."""
        mask = (self.t >= t_start) & (self.t <= t_stop)
        if mask.sum() < 2:
            raise MeasurementError(
                f"slice [{t_start}, {t_stop}] of '{self.name}' holds fewer "
                "than two samples")
        return Waveform(self.t[mask], self.v[mask], self.name)

    def mean(self) -> float:
        """Time-weighted average (trapezoidal) over the full span."""
        return float(np.trapezoid(self.v, self.t) / self.duration)

    def min(self) -> float:
        return float(self.v.min())

    def max(self) -> float:
        return float(self.v.max())

    def peak_to_peak(self) -> float:
        return self.max() - self.min()

    def value_at_fraction(self, fraction: float) -> float:
        """Interpolated value at ``t0 + fraction*(t1 - t0)``."""
        return float(self(self.t[0] + fraction * self.duration))

    def derivative(self) -> "Waveform":
        """Centred finite-difference derivative, same grid."""
        dv = np.gradient(self.v, self.t)
        return Waveform(self.t, dv, f"d({self.name})/dt")

    # ------------------------------------------------------------------
    # crossings and edges
    # ------------------------------------------------------------------
    def crossings(self, threshold: float, edge: EdgeKind = "any",
                  t_start: float | None = None,
                  t_stop: float | None = None) -> list[Crossing]:
        """Find all interpolated crossings of *threshold*.

        Samples exactly on the threshold are attributed to the interval in
        which the signal leaves the threshold, which keeps the count stable
        for waveforms that touch the threshold at a grid point.
        """
        t, v = self.t, self.v
        d = v - threshold
        sign = np.sign(d)
        # Treat exact zeros as belonging to the previous sign so that a
        # single tangential touch does not double count.
        for i in range(1, sign.size):
            if sign[i] == 0.0:
                sign[i] = sign[i - 1]
        if sign[0] == 0.0:
            nonzero = np.nonzero(sign)[0]
            sign[0] = sign[nonzero[0]] if nonzero.size else 1.0
        idx = np.nonzero(sign[1:] * sign[:-1] < 0.0)[0]

        result: list[Crossing] = []
        for i in idx:
            dt = t[i + 1] - t[i]
            dv = v[i + 1] - v[i]
            frac = (threshold - v[i]) / dv
            tc = t[i] + frac * dt
            slope = dv / dt
            if t_start is not None and tc < t_start:
                continue
            if t_stop is not None and tc > t_stop:
                continue
            if edge == "rise" and slope < 0.0:
                continue
            if edge == "fall" and slope > 0.0:
                continue
            result.append(Crossing(time=float(tc), slope=float(slope),
                                   index=int(i)))
        return result

    def crossing(self, threshold: float, edge: EdgeKind = "any",
                 occurrence: int = 0, t_start: float | None = None,
                 t_stop: float | None = None) -> Crossing:
        """Return the *occurrence*-th crossing (negative counts from the end).

        Raises
        ------
        MeasurementError
            If the requested crossing does not exist.
        """
        found = self.crossings(threshold, edge, t_start, t_stop)
        try:
            return found[occurrence]
        except IndexError:
            raise MeasurementError(
                f"waveform '{self.name}': requested {edge} crossing "
                f"#{occurrence} of {threshold!r} but found {len(found)}"
            ) from None

    # ------------------------------------------------------------------
    # derived measurements
    # ------------------------------------------------------------------
    def delay_to(self, other: "Waveform", threshold_self: float,
                 threshold_other: float, edge_self: EdgeKind = "rise",
                 edge_other: EdgeKind = "fall", occurrence_self: int = 0,
                 occurrence_other: int = 0) -> float:
        """Delay from a crossing of *self* to a crossing of *other* [s]."""
        t0 = self.crossing(threshold_self, edge_self, occurrence_self).time
        c1 = other.crossing(threshold_other, edge_other, occurrence_other,
                            t_start=t0)
        return c1.time - t0

    def period(self, threshold: float | None = None,
               edge: EdgeKind = "rise", skip: int = 1) -> float:
        """Average oscillation period from successive *edge* crossings.

        Parameters
        ----------
        threshold:
            Crossing level; defaults to the midpoint of the waveform range.
        skip:
            Number of initial crossings to discard (startup transient).
        """
        if threshold is None:
            threshold = 0.5 * (self.min() + self.max())
        times = [c.time for c in self.crossings(threshold, edge)]
        if len(times) < skip + 2:
            raise MeasurementError(
                f"waveform '{self.name}': need at least {skip + 2} {edge} "
                f"crossings for a period estimate, found {len(times)}")
        times = np.asarray(times[skip:])
        periods = np.diff(times)
        return float(periods.mean())

    def frequency(self, threshold: float | None = None,
                  edge: EdgeKind = "rise", skip: int = 1) -> float:
        """``1 / period`` [Hz]."""
        return 1.0 / self.period(threshold, edge, skip)

    def fundamental_amplitude(self, frequency: float) -> float:
        """Amplitude of the component at *frequency* via single-bin Fourier
        projection over an integer number of cycles.

        Used for the carrier amplitude ``Ac`` in the paper's Eqs. 7-9.
        """
        n_cycles = int(np.floor(self.duration * frequency))
        if n_cycles < 1:
            raise MeasurementError(
                "waveform shorter than one cycle of the requested frequency")
        t_stop = self.t[0] + n_cycles / frequency
        w = self.slice(self.t[0], t_stop)
        phase = 2.0 * np.pi * frequency * (w.t - w.t[0])
        span = w.t[-1] - w.t[0]
        a = 2.0 / span * np.trapezoid(w.v * np.cos(phase), w.t)
        b = 2.0 / span * np.trapezoid(w.v * np.sin(phase), w.t)
        return float(np.hypot(a, b))

    def is_settled(self, period: float, reltol: float = 1e-6,
                   abstol: float = 1e-9) -> bool:
        """True when the last two periods agree within tolerance."""
        if self.duration < 2.0 * period:
            return False
        t_end = self.t[-1]
        last = self.slice(t_end - period, t_end)
        prev = self.slice(t_end - 2.0 * period, t_end - period)
        v_prev = np.interp(last.t - period, prev.t, prev.v)
        scale = max(self.peak_to_peak(), abstol)
        return bool(np.max(np.abs(last.v - v_prev)) <= reltol * scale + abstol)


class WaveformSet:
    """A bundle of named waveforms sharing one time axis.

    Analyses return these; indexing by node name yields a
    :class:`Waveform`.  Differential signals are available with
    ``ws["a", "b"]`` which returns the waveform of ``v(a) - v(b)``.
    The shared axis may be non-uniform (adaptive transients); see the
    module docstring.
    """

    def __init__(self, t: np.ndarray, signals: dict[str, np.ndarray]):
        self.t = np.asarray(t, dtype=float)
        self._signals = {k: np.asarray(v, dtype=float)
                         for k, v in signals.items()}
        for k, v in self._signals.items():
            if v.shape != self.t.shape:
                raise ValueError(f"signal '{k}' length mismatch")

    def names(self) -> list[str]:
        return sorted(self._signals)

    def __contains__(self, name: str) -> bool:
        return name in self._signals

    def __getitem__(self, key: str | tuple[str, str]) -> Waveform:
        if isinstance(key, tuple):
            pos, neg = key
            return Waveform(self.t, self.array(pos) - self.array(neg),
                            f"{pos}-{neg}")
        return Waveform(self.t, self.array(key), key)

    def array(self, name: str) -> np.ndarray:
        try:
            return self._signals[name]
        except KeyError:
            raise MeasurementError(
                f"no signal named '{name}'; available: {self.names()}"
            ) from None


def sine(t: Iterable[float], amplitude: float, frequency: float,
         phase: float = 0.0, offset: float = 0.0, name: str = "sine"
         ) -> Waveform:
    """Convenience constructor for test waveforms."""
    t = np.asarray(list(t), dtype=float)
    v = offset + amplitude * np.sin(2.0 * np.pi * frequency * t + phase)
    return Waveform(t, v, name)
