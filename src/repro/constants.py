"""Physical constants and default simulator tolerances.

All quantities are SI.  Temperature-dependent helpers take the temperature
in kelvin; circuit-level code defaults to :data:`T_NOMINAL`.
"""

from __future__ import annotations

import math

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Default simulation temperature [K] (27 C, the SPICE default).
T_NOMINAL = 300.15


def thermal_voltage(temperature: float = T_NOMINAL) -> float:
    """Return the thermal voltage ``kT/q`` in volts at *temperature*."""
    return BOLTZMANN * temperature / ELEMENTARY_CHARGE


#: Thermal voltage at the nominal temperature [V] (~25.9 mV).
PHI_T = thermal_voltage()

#: Conductance added from every node to ground during DC solves [S].
GMIN_DEFAULT = 1e-12

#: Capacitance added from every node to ground [F].  A small grounded
#: capacitor on every node keeps the MNA system index-1 so that shooting
#: methods see a well-defined state on every node.  It is far below any
#: device capacitance used by the bundled circuits.
CMIN_DEFAULT = 1e-16

#: Newton-Raphson absolute tolerance on KCL residuals [A].
ABSTOL_DEFAULT = 1e-12

#: Newton-Raphson absolute tolerance on node voltages [V].
VNTOL_DEFAULT = 1e-9

#: Newton-Raphson relative tolerance.
RELTOL_DEFAULT = 1e-9

#: Maximum Newton iterations for a single solve.
MAX_NEWTON_ITERATIONS = 100

#: The paper models mismatch as 1/f pseudo-noise whose PSD equals the
#: mismatch variance at this frequency [Hz].  The exact value is arbitrary
#: as long as it is far below the PSS fundamental (paper, Section III).
PSEUDO_NOISE_FREQUENCY = 1.0

TWO_PI = 2.0 * math.pi
