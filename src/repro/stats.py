"""Sample statistics used by both the Monte-Carlo baseline and the paper's
accuracy discussion.

The paper leans on three statistical facts (Sections VI and VIII):

* the 95 % confidence interval of a standard-deviation estimate from ``n``
  Gaussian samples is roughly ``+/- 1.96 / sqrt(2 n)`` relative
  (+/-14 % at n=100, +/-4.5 % at n=1000, +/-1.4 % at n=10000);
* the *normalised skewness* ``mu_3^{1/3} / mu`` (their definition) measures
  departure from Gaussianity of the simulated performance distribution;
* a linear perturbation model maps Gaussian mismatch to an exactly Gaussian
  performance distribution.

This module provides those quantities plus standard helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class SampleStats:
    """Summary statistics of one scalar sample set."""

    n: int
    mean: float
    std: float
    skewness: float
    normalized_skewness: float
    std_ci_low: float
    std_ci_high: float

    @property
    def std_ci_relative(self) -> float:
        """Half-width of the 95 % CI on sigma, relative to sigma."""
        if self.std == 0.0:
            return 0.0
        return 0.5 * (self.std_ci_high - self.std_ci_low) / self.std


def describe(samples: np.ndarray, confidence: float = 0.95) -> SampleStats:
    """Return :class:`SampleStats` for *samples* (1-D array-like)."""
    x = np.asarray(samples, dtype=float).ravel()
    if x.size < 2:
        raise ValueError("need at least two samples")
    n = x.size
    mean = float(x.mean())
    std = float(x.std(ddof=1))
    skew = float(sps.skew(x, bias=False)) if n > 2 else 0.0
    lo, hi = sigma_confidence_interval(std, n, confidence)
    return SampleStats(
        n=n,
        mean=mean,
        std=std,
        skewness=skew,
        normalized_skewness=normalized_skewness(x),
        std_ci_low=lo,
        std_ci_high=hi,
    )


def sigma_confidence_interval(std: float, n: int,
                              confidence: float = 0.95
                              ) -> tuple[float, float]:
    """Confidence interval for the population sigma given a sample sigma.

    Uses the exact chi-square interval for Gaussian samples,
    ``sigma in [s*sqrt((n-1)/chi2_hi), s*sqrt((n-1)/chi2_lo)]``.
    """
    if n < 2:
        raise ValueError("need at least two samples")
    alpha = 1.0 - confidence
    chi2_lo = sps.chi2.ppf(alpha / 2.0, n - 1)
    chi2_hi = sps.chi2.ppf(1.0 - alpha / 2.0, n - 1)
    return (std * np.sqrt((n - 1) / chi2_hi),
            std * np.sqrt((n - 1) / chi2_lo))


def sigma_relative_ci_halfwidth(n: int, confidence: float = 0.95) -> float:
    """Approximate relative 95 % CI half-width of a sigma estimate.

    ``1.96/sqrt(2 n)`` for the default confidence: the numbers the paper
    quotes (+/-14 %, +/-4.5 %, +/-1.4 % for n = 100, 1000, 10000).
    """
    z = sps.norm.ppf(0.5 + confidence / 2.0)
    return float(z / np.sqrt(2.0 * n))


def normalized_skewness(samples: np.ndarray) -> float:
    """The paper's skewness measure ``mu_3^{1/3} / mu`` (Section VIII).

    ``mu_3`` is the third central moment ``E[(X - mu)^3]`` and ``mu`` the
    mean.  The cube root preserves sign.
    """
    x = np.asarray(samples, dtype=float).ravel()
    mu = x.mean()
    if mu == 0.0:
        return float("nan")
    mu3 = np.mean((x - mu) ** 3)
    return float(np.sign(mu3) * np.abs(mu3) ** (1.0 / 3.0) / mu)


def gaussian_pdf(x: np.ndarray, mean: float, std: float) -> np.ndarray:
    """Gaussian PDF, the shape the linear perturbation model predicts."""
    x = np.asarray(x, dtype=float)
    return np.exp(-0.5 * ((x - mean) / std) ** 2) / (std * np.sqrt(2 * np.pi))


def histogram_against_gaussian(samples: np.ndarray, mean: float, std: float,
                               bins: int = 30
                               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Histogram of *samples* (density) plus the Gaussian PDF on bin centres.

    Returns ``(centres, density, pdf)`` - the data behind the paper's
    Figs. 9 and 12.
    """
    x = np.asarray(samples, dtype=float).ravel()
    density, edges = np.histogram(x, bins=bins, density=True)
    centres = 0.5 * (edges[:-1] + edges[1:])
    return centres, density, gaussian_pdf(centres, mean, std)


def ascii_histogram(samples: np.ndarray, mean: float, std: float,
                    bins: int = 25, width: int = 50,
                    label: str = "value") -> str:
    """Text rendering of a histogram with the Gaussian-PDF prediction.

    ``#`` bars show the Monte-Carlo density; ``*`` marks the PDF value
    predicted by the sensitivity-based analysis on each bin row.
    """
    centres, density, pdf = histogram_against_gaussian(samples, mean, std,
                                                       bins)
    top = max(density.max(), pdf.max(), 1e-300)
    lines = [f"{'':>12s}  histogram (#) vs linear-model PDF (*) of {label}"]
    for c, d, p in zip(centres, density, pdf):
        bar = int(round(d / top * width))
        star = min(int(round(p / top * width)), width)
        row = list("#" * bar + " " * (width - bar + 1))
        row[star] = "*"
        lines.append(f"{c:12.4e}  |{''.join(row)}")
    return "\n".join(lines)
